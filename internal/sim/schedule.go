package sim

import (
	"fmt"
	"sync"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// The compiled-schedule layer.
//
// The operation stream a march test induces on a memory depends only on
// (test, address orders, memory size) — never on the fault being simulated.
// The exhaustive simulator, however, fans the same test out over hundreds of
// faults × placements × initial values × order combinations, and the naive
// path re-derives the order combinations, the address sequences and the
// fault-free machine behavior for every single scenario.
//
// A Schedule compiles all of that once per (test, config):
//
//   - the resolved ⇕ order combinations (orderCombinations),
//   - the op streams of all combinations, flattened to [(element, addr, op)]
//     steps and shared as a trie over the per-element order choices: two
//     combinations that agree on the orders of the first j elements share
//     one compiled prefix and — at run time — one simulation of it,
//   - per step, the fault-free ("good") value the addressed cell holds when
//     the step executes. A cell's fault-free value is its scenario initial
//     value until the stream's first write to it, and the last written value
//     afterwards — so the good machine never needs to be simulated again:
//     reads compare the faulty value against the cached trace.
//
// Machines are pooled (sync.Pool) across the Simulate/FullCoverage worker
// fan-out, so steady-state simulation does not allocate per fault.

// opStep is one operation of a compiled stream.
type opStep struct {
	// elem and opIdx locate the operation in the march test.
	elem  int
	opIdx int
	// addr is the concrete memory address the operation targets.
	addr int
	// op is the operation.
	op fp.Op
	// goodKnown reports that an earlier step of the stream wrote addr; good
	// is then the fault-free value of addr entering this step. When false
	// the cell still holds its scenario-dependent initial value (the fault
	// cell's Init, or 0 for bystanders) and good must be ignored.
	goodKnown bool
	good      fp.Value
}

// stream is the compiled operation stream of one concrete order combination.
type stream struct {
	orders []march.AddrOrder
	steps  []opStep
}

// segment is one node of the order-choice trie: the steps of one march
// element under one concrete address order, compiled for one prefix of order
// choices (the good-trace annotations depend on the prefix). Leaves carry
// the index of their order combination in the schedule's orderSets.
type segment struct {
	steps    []opStep
	children []int // segment indices of the next element's order choices
	leaf     int   // orderSets index when this is the last element, else -1
}

// Schedule is a compiled simulation schedule: every fault-independent
// artifact of simulating one march test under one configuration. Build it
// once with NewSchedule and share it across the whole fault fan-out; all
// methods are safe for concurrent use.
type Schedule struct {
	test      march.Test
	cfg       Config
	size      int
	orderSets [][]march.AddrOrder
	segs      []segment
	roots     []int     // segment indices of the first element's order choices
	pool      sync.Pool // *machine, sized for this schedule's memory
	// laneWrites reports that every write step of every segment carries a
	// binary value, a precondition of the one-bit-per-cell lane encoding
	// (lanes.go). Library tests always satisfy it; only hand-built tests
	// with don't-care writes force the scalar path.
	laneWrites bool
}

// NewSchedule compiles the simulation schedule of a march test under a
// configuration. It fails only where scenario enumeration would fail: when
// the exhaustive ⇕ expansion exceeds Config.MaxAnyElements.
func NewSchedule(t march.Test, cfg Config) (*Schedule, error) {
	orderSets, err := orderCombinations(t, cfg)
	if err != nil {
		return nil, err
	}
	size := cfg.size()
	s := &Schedule{test: t, cfg: cfg, size: size, orderSets: orderSets}
	s.compileTree()
	s.laneWrites = true
	for i := range s.segs {
		for j := range s.segs[i].steps {
			if op := s.segs[i].steps[j].op; op.Kind == fp.OpWrite && !op.Data.IsBinary() {
				s.laneWrites = false
			}
		}
	}
	s.pool.New = func() any { return newMachine(size) }
	return s, nil
}

// compileTree builds the segment trie. Sibling order within a ⇕ element is
// Up then Down; the leaf index is the bit pattern orderCombinations assigns
// to the path's choices, so leaves map 1:1 onto orderSets (bit j of the
// index is the j-th ⇕ element's choice). Note the trie's depth-first leaf
// order is NOT ascending leaf index — combination enumeration varies the
// FIRST ⇕ element fastest — which is why runTree tracks the minimum missed
// leaf index instead of stopping at the first miss.
func (s *Schedule) compileTree() {
	t := s.test
	exhaustive := s.cfg.ExhaustiveOrders && len(s.orderSets) > 1

	var build func(ei, anyPos, bits int, order march.AddrOrder, written []bool, lastWrite []fp.Value) int
	build = func(ei, anyPos, bits int, order march.AddrOrder, written []bool, lastWrite []fp.Value) int {
		w := append([]bool(nil), written...)
		lw := append([]fp.Value(nil), lastWrite...)
		seg := segment{steps: compileElemSteps(t.Elems[ei], order, s.size, ei, w, lw), leaf: -1}
		if ei == len(t.Elems)-1 {
			seg.leaf = bits
		} else {
			next := t.Elems[ei+1].Order
			nextAny := anyPos
			if next == march.Any {
				if exhaustive {
					nextAny++
					seg.children = append(seg.children, build(ei+1, nextAny, bits, march.Up, w, lw))
					seg.children = append(seg.children, build(ei+1, nextAny, bits|1<<anyPos, march.Down, w, lw))
				} else {
					seg.children = append(seg.children, build(ei+1, nextAny, bits, march.Up, w, lw))
				}
			} else {
				seg.children = append(seg.children, build(ei+1, nextAny, bits, next, w, lw))
			}
		}
		s.segs = append(s.segs, seg)
		return len(s.segs) - 1
	}

	if len(t.Elems) == 0 {
		return
	}
	written := make([]bool, s.size)
	lastWrite := make([]fp.Value, s.size)
	first := t.Elems[0].Order
	if first == march.Any {
		if exhaustive {
			s.roots = append(s.roots, build(0, 1, 0, march.Up, written, lastWrite))
			s.roots = append(s.roots, build(0, 1, 1, march.Down, written, lastWrite))
		} else {
			s.roots = append(s.roots, build(0, 1, 0, march.Up, written, lastWrite))
		}
	} else {
		s.roots = append(s.roots, build(0, 0, 0, first, written, lastWrite))
	}
}

// compileElemSteps flattens one element under one concrete order,
// annotating each step with the cached fault-free value of its target cell
// and updating the written/lastWrite prefix state in place. Any orders
// iterate upward, matching AddrOrder.Addresses.
func compileElemSteps(e march.Element, order march.AddrOrder, size, ei int, written []bool, lastWrite []fp.Value) []opStep {
	steps := make([]opStep, 0, size*len(e.Ops))
	for i := 0; i < size; i++ {
		addr := i
		if order == march.Down {
			addr = size - 1 - i
		}
		for oi, op := range e.Ops {
			steps = append(steps, opStep{
				elem: ei, opIdx: oi, addr: addr, op: op,
				goodKnown: written[addr], good: lastWrite[addr],
			})
			if op.Kind == fp.OpWrite {
				written[addr] = true
				lastWrite[addr] = op.Data
			}
		}
	}
	return steps
}

// compileStream flattens the test into the operation stream induced by one
// concrete order assignment (used by TraceScenario, which needs one linear
// stream rather than the trie).
func compileStream(t march.Test, orders []march.AddrOrder, size int) stream {
	n := 0
	for _, e := range t.Elems {
		n += size * len(e.Ops)
	}
	steps := make([]opStep, 0, n)
	written := make([]bool, size)
	lastWrite := make([]fp.Value, size)
	for ei, e := range t.Elems {
		steps = append(steps, compileElemSteps(e, orders[ei], size, ei, written, lastWrite)...)
	}
	return stream{orders: orders, steps: steps}
}

// Test returns the march test the schedule was compiled from.
func (s *Schedule) Test() march.Test { return s.test }

// Config returns the configuration the schedule was compiled under.
func (s *Schedule) Config() Config { return s.cfg }

// Streams returns the number of compiled order combinations.
func (s *Schedule) Streams() int { return len(s.orderSets) }

// ScenarioCount returns the number of concrete scenarios the schedule
// enumerates for a fault: placements × initial values × order combinations.
func (s *Schedule) ScenarioCount(f linked.Fault) (int, error) {
	if f.Cells >= s.size {
		return 0, fmt.Errorf("sim: memory of %d cells cannot place a %d-cell fault with a bystander", s.size, f.Cells)
	}
	placements := 1
	for i := 0; i < f.Cells; i++ {
		placements *= s.size - i
	}
	return placements * (1 << f.Cells) * len(s.orderSets), nil
}

func (s *Schedule) getMachine() *machine  { return s.pool.Get().(*machine) }
func (s *Schedule) putMachine(m *machine) { s.pool.Put(m) }

// forEachPlacement enumerates the placements of k fault cells in exactly
// the order of the uncompiled reference path; enumeration stops early when
// fn returns false. The placement slice is reused across invocations.
func (s *Schedule) forEachPlacement(k int, fn func(placement []int) bool) error {
	if k >= s.size {
		return fmt.Errorf("sim: memory of %d cells cannot place a %d-cell fault with a bystander", s.size, k)
	}
	placement := make([]int, k)
	used := make([]bool, s.size)

	var place func(depth int) bool
	place = func(depth int) bool {
		if depth == k {
			return fn(placement)
		}
		for a := 0; a < s.size; a++ {
			if used[a] {
				continue
			}
			used[a] = true
			placement[depth] = a
			ok := place(depth + 1)
			used[a] = false
			if !ok {
				return false
			}
		}
		return true
	}
	place(0)
	return nil
}

// runBlock simulates every initial-value assignment of one placement, in
// reference order, over the order-combination trie. It reports the first
// miss as (miss, init bit pattern, orderSets index); needWitness is passed
// through to runTree.
func (s *Schedule) runBlock(m *machine, f linked.Fault, placement []int, init []fp.Value, needWitness bool) (bool, int, int) {
	k := len(placement)
	for bits := 0; bits < 1<<k; bits++ {
		for c := 0; c < k; c++ {
			init[c] = fp.ValueOf(uint8(bits>>c) & 1)
		}
		if miss, leaf := s.runTree(m, f, placement, init, needWitness); miss {
			return true, bits, leaf
		}
	}
	return false, 0, 0
}

// anyDynamic reports whether any bound primitive of the fault is dynamic.
func anyDynamic(f linked.Fault) bool {
	for i := range f.FPs {
		if f.FPs[i].FP.IsDynamic() {
			return true
		}
	}
	return false
}

// Placement-class memoization bounds. classSpace is the size of the rank
// table: ranks pack one base-classKeyBase digit per cell (digits 1..k, k ≤
// maxClassCells), so every rank of an eligible fault is < classSpace. The
// memoizing paths check the cell count against maxClassCells (canClassCache)
// before touching the table; a fault with more cells degrades to the
// uncached per-placement path instead of aliasing table slots.
const (
	maxClassCells = 3
	classKeyBase  = maxClassCells + 1
	classSpace    = classKeyBase * classKeyBase * classKeyBase
)

// canClassCache reports whether the per-placement-class memoization (and the
// lane engine, which is built on the same equivalence) applies to a fault:
// static primitives only, and few enough cells that every class rank fits
// the classSpace table.
func canClassCache(f linked.Fault) bool {
	return f.Cells >= 1 && f.Cells <= maxClassCells && !anyDynamic(f)
}

// placementClass ranks the relative address order of the placed cells: the
// cell indices in ascending address order, packed base-classKeyBase
// (cells ≤ maxClassCells).
//
// For faults with only static primitives the simulation outcome of a
// scenario depends on the placement solely through this rank: every march
// element applies the same operations at every address, so the operation
// substream a cell sees — and its good-trace annotations — depend only on
// where the cell sits relative to the other fault cells, and bystander
// steps neither match a primitive nor detect (their only side effect,
// disarming, concerns dynamic primitives). Two placements with equal rank
// therefore miss or detect identically, for identical (init, order
// combination) pairs.
//
// The rank is computed by sorting the k (address, cell) pairs — O(k log k),
// an insertion sort over at most maxClassCells entries — instead of the old
// O(size·k) scan over every memory address, so it no longer grows with the
// memory size.
func placementClass(placement []int) int {
	var addrs, cells [maxClassCells]int
	for c, a := range placement {
		i := c
		for i > 0 && addrs[i-1] > a {
			addrs[i], cells[i] = addrs[i-1], cells[i-1]
			i--
		}
		addrs[i], cells[i] = a, c
	}
	key := 0
	for i := 0; i < len(placement); i++ {
		key = key*classKeyBase + cells[i] + 1
	}
	return key
}

// classResult memoizes one placement class's block outcome.
type classResult struct {
	done     bool
	miss     bool
	initBits int
	leaf     int
}

// bindCtx is the placement-resolved view of one fault binding: every field
// the inner simulation loop needs, flattened out of the Binding/FP structs
// so stepping reads a handful of scalars instead of chasing and copying the
// notation-level representation.
type bindCtx struct {
	victimAddr int
	aggAddr    int // -1 when the primitive has no aggressor
	trigOp     bool
	trigState  bool
	dynamic    bool
	opRole     fp.Role
	opKind     fp.OpKind
	opData     fp.Value // write data of the first sensitizing operation
	op2Kind    fp.OpKind
	op2Data    fp.Value
	aInit      fp.Value // VX when unconstrained
	vInit      fp.Value // VX when unconstrained
	fv         fp.Value // faulty value stored in the victim
	r          fp.Value // faulty read return, VX when none
}

// validateBindings rejects faults whose binding indices lie outside the
// fault's declared cell set. Taxonomy faults can never fail this —
// linked.Binding.Validate enforces the same ranges — but hand-built faults
// bypass Validate, and an out-of-range index used to surface as an index
// panic deep inside bindFault (placement[b.V] / placement[b.A]) instead of
// an error. Every simulation entry point calls this before resolving a
// placement.
func validateBindings(f linked.Fault) error {
	for i := range f.FPs {
		b := &f.FPs[i]
		if b.V < 0 || b.V >= f.Cells {
			return fmt.Errorf("sim: binding %d (%s): victim index %d out of range [0,%d)",
				i, b.FP.ID(), b.V, f.Cells)
		}
		if b.A < -1 || b.A >= f.Cells {
			return fmt.Errorf("sim: binding %d (%s): aggressor index %d out of range [-1,%d)",
				i, b.FP.ID(), b.A, f.Cells)
		}
	}
	return nil
}

// bindFault resolves the fault's bindings against a placement into the
// machine's context buffer and returns whether any binding is
// state-triggered (settling is skipped entirely otherwise) and whether any
// is dynamic (arming bookkeeping is skipped otherwise).
func (m *machine) bindFault(f linked.Fault, placement []int) (hasState, hasDynamic bool) {
	if cap(m.ctxs) < len(f.FPs) {
		m.ctxs = make([]bindCtx, len(f.FPs))
	}
	m.ctxs = m.ctxs[:len(f.FPs)]
	for i := range f.FPs {
		b := &f.FPs[i]
		c := &m.ctxs[i]
		*c = bindCtx{
			victimAddr: placement[b.V],
			aggAddr:    -1,
			trigOp:     b.FP.Trigger == fp.TrigOp,
			trigState:  b.FP.Trigger == fp.TrigState,
			dynamic:    b.FP.IsDynamic(),
			opRole:     b.FP.OpRole,
			opKind:     b.FP.Op.Kind,
			opData:     b.FP.Op.Data,
			op2Kind:    b.FP.Op2.Kind,
			op2Data:    b.FP.Op2.Data,
			aInit:      b.FP.AInit,
			vInit:      b.FP.VInit,
			fv:         b.FP.F,
			r:          b.FP.R,
		}
		if b.A >= 0 {
			c.aggAddr = placement[b.A]
		}
		if b.FP.Cells != 2 {
			// MatchesOp only constrains the aggressor state of two-cell
			// primitives; mirror that here.
			c.aInit = fp.VX
		}
		if c.aInit != fp.VX && c.aggAddr < 0 {
			// An aggressor-state condition with no bound aggressor can never
			// hold (the reference matchers compare it against VX); the
			// binding is inert. Only hand-built faults reach this — Validate
			// rejects them — but the simulator must not index address -1.
			// victimAddr -1 keeps it out of the trigger loop, the cleared
			// flags keep it out of the settle and wait scans.
			c.trigOp = false
			c.trigState = false
			c.victimAddr = -1
		}
		hasState = hasState || c.trigState
		hasDynamic = hasDynamic || c.dynamic
	}
	return hasState, hasDynamic
}

// settleCtx is settleStateFaults over the resolved contexts: apply
// state-triggered primitives until a fixpoint, bounded to avoid oscillation
// between mutually linked state conditions.
func (m *machine) settleCtx() {
	for iter := 0; iter <= len(m.ctxs); iter++ {
		progress := false
		for i := range m.ctxs {
			c := &m.ctxs[i]
			if !c.trigState {
				continue
			}
			// Check the aggressor's existence before indexing with its
			// address: bindFault neuters no-aggressor bindings that carry an
			// aggressor condition (clearing trigState), so aggAddr is never
			// -1 here today — but only because of that ordering. Keep the
			// bound check first so the invariant is local, not global.
			if c.aInit != fp.VX && (c.aggAddr < 0 || m.faulty[c.aggAddr] != c.aInit) {
				continue
			}
			// MatchesState requires a binary victim condition, so a VX VInit
			// (hand-built; Validate rejects it) never sensitizes.
			if c.vInit != fp.VX && m.faulty[c.victimAddr] == c.vInit && c.fv != c.vInit {
				m.faulty[c.victimAddr] = c.fv
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// waitCtx is applyWait over the resolved contexts: time passes for the whole
// array, sensitizing data retention primitives whose state conditions hold.
func (m *machine) waitCtx(hasState bool) {
	for i := range m.ctxs {
		c := &m.ctxs[i]
		if !c.trigOp || c.dynamic || c.opKind != fp.OpWait || c.opRole != fp.RoleVictim {
			continue
		}
		// As in settleCtx: bound-check aggAddr before indexing with it.
		if c.aInit != fp.VX && (c.aggAddr < 0 || m.faulty[c.aggAddr] != c.aInit) {
			continue
		}
		if c.vInit != fp.VX && m.faulty[c.victimAddr] != c.vInit {
			continue
		}
		m.faulty[c.victimAddr] = c.fv
	}
	if hasState {
		m.settleCtx()
	}
}

// runSteps simulates the fault over one compiled step segment from the
// machine's current state and reports whether any read detects it. Only the
// faulty array is simulated; reads compare against the segment's cached good
// trace. The semantics are exactly those of the reference machine.run/step
// pair (schedule_test.go pins the equivalence), specialized for speed:
// bindings are pre-resolved against the placement (bindFault), bystander
// steps reduce to disarming, and the settle/arming bookkeeping is skipped
// for faults that cannot need it.
func (m *machine) runSteps(init []fp.Value, steps []opStep, hasState, hasDynamic bool) bool {
	// The loop runs a handful of instructions per step; everything it needs
	// is hoisted into locals so the compiler keeps the slice headers in
	// registers across the stores into faulty. The armed pair is swapped
	// locally and written back on exit (save/restore read the fields).
	faulty := m.faulty
	cellAt := m.cellAt
	ctxs := m.ctxs
	matched := m.matched
	armed, armedAddr := m.armed, m.armedAddr
	nextArmed, nextArmedAddr := m.nextArmed, m.nextArmedAddr
	writeback := func() {
		m.armed, m.armedAddr = armed, armedAddr
		m.nextArmed, m.nextArmedAddr = nextArmed, nextArmedAddr
	}

	for si := range steps {
		st := &steps[si]
		op := st.op
		addr := st.addr
		if op.Kind == fp.OpWait {
			m.waitCtx(hasState)
			for i := range armed {
				armed[i] = false // a wait breaks back-to-back sequences
			}
			continue
		}
		if cellAt[addr] < 0 {
			// Bystander cell: no primitive can match (every aggressor and
			// victim is a placed cell), the faulty value equals the good
			// trace by induction, and the only side effect of the step is
			// breaking any armed back-to-back sequence.
			if hasDynamic {
				for i := range armed {
					armed[i] = false
				}
			}
			continue
		}

		// 1. Evaluate operation triggers against the pre-operation faulty
		// state (the specialized evalTriggers). State-triggered and inert
		// bindings fall out naturally: their opKind is OpNone (never equal
		// to a read or write) and their victimAddr is -1 respectively.
		anyMatched := false
		for i := range ctxs {
			c := &ctxs[i]
			mt := false
			na := false
			hit := false
			if addr == c.victimAddr {
				hit = c.opRole == fp.RoleVictim
			} else if addr == c.aggAddr {
				hit = c.opRole == fp.RoleAggressor
			}
			if hit {
				if c.dynamic {
					if armed[i] && armedAddr[i] == addr &&
						op.Kind == c.op2Kind && (op.Kind != fp.OpWrite || op.Data == c.op2Data) {
						mt = true
					} else if op.Kind == c.opKind && (op.Kind != fp.OpWrite || op.Data == c.opData) &&
						(c.aInit == fp.VX || faulty[c.aggAddr] == c.aInit) &&
						(c.vInit == fp.VX || faulty[c.victimAddr] == c.vInit) {
						na = true
					}
				} else if op.Kind == c.opKind && (op.Kind != fp.OpWrite || op.Data == c.opData) &&
					(c.aInit == fp.VX || faulty[c.aggAddr] == c.aInit) &&
					(c.vInit == fp.VX || faulty[c.victimAddr] == c.vInit) {
					mt = true
				}
			}
			matched[i] = mt
			anyMatched = anyMatched || mt
			if hasDynamic {
				nextArmed[i] = na
				if na {
					nextArmedAddr[i] = addr
				}
			}
		}
		if hasDynamic {
			armed, nextArmed = nextArmed, armed
			armedAddr, nextArmedAddr = nextArmedAddr, armedAddr
		}

		// 2. Base operation semantics on the faulty machine; the good value
		// comes from the compiled trace (or the scenario's initial values
		// before the stream's first write to the cell).
		retGood, retFaulty := fp.VX, fp.VX
		changed := anyMatched
		isRead := op.Kind == fp.OpRead
		if isRead {
			retGood = st.good
			if !st.goodKnown {
				retGood = init[cellAt[addr]]
			}
			retFaulty = faulty[addr]
		} else { // write: waits were handled above
			changed = changed || faulty[addr] != op.Data
			faulty[addr] = op.Data
		}

		// 3. Fault effects, in binding order (FP1 before FP2).
		if anyMatched {
			for i := range ctxs {
				if !matched[i] {
					continue
				}
				c := &ctxs[i]
				faulty[c.victimAddr] = c.fv
				if isRead && c.victimAddr == addr && c.opRole == fp.RoleVictim && c.r != fp.VX {
					retFaulty = c.r
				}
			}
		}

		// 4. State-triggered primitives settle on the new state. The state
		// was at a fixpoint entering the step, so settling is only needed
		// when the step changed a cell (write or fault effect).
		if hasState && changed {
			m.settleCtx()
		}

		if isRead && retFaulty != retGood {
			writeback()
			return true
		}
	}
	writeback()
	return false
}

// runTree simulates every order combination of one (placement, init) block
// by walking the segment trie: combinations sharing a prefix of order
// choices share one simulation of it, and a detection inside a shared
// prefix settles the whole subtree at once. It reports whether any
// combination fails to detect the fault and, when needWitness is set, the
// LOWEST orderSets index among the failing combinations — the combination
// the reference enumeration would have reported first (depth-first trie
// order differs from combination order, so the walk cannot just stop at its
// first miss). With needWitness unset the walk aborts on any miss.
func (s *Schedule) runTree(m *machine, f linked.Fault, placement []int, init []fp.Value, needWitness bool) (bool, int) {
	m.ensureBindings(len(f.FPs))
	hasState, hasDynamic := m.bindFault(f, placement)
	nb := len(m.ctxs)
	for i := range m.faulty {
		m.faulty[i] = fp.V0
		m.cellAt[i] = -1
	}
	for c, addr := range placement {
		m.faulty[addr] = init[c]
		m.cellAt[addr] = c
	}
	m.disarm()
	if hasState {
		m.settleCtx()
	}

	if len(s.roots) == 0 {
		// A test with no elements performs no reads: every combination (there
		// is exactly one) misses.
		return true, 0
	}

	depth := len(s.test.Elems) + 1
	m.ensureSnapshots(depth*s.size, depth*nb)
	missLeaf := -1

	var walk func(idx, d int)
	walk = func(idx, d int) {
		seg := &s.segs[idx]
		if m.runSteps(init, seg.steps, hasState, hasDynamic) {
			return // every combination under this prefix is detected
		}
		if seg.leaf >= 0 {
			if missLeaf < 0 || seg.leaf < missLeaf {
				missLeaf = seg.leaf
			}
			return
		}
		if len(seg.children) == 1 {
			walk(seg.children[0], d+1)
			return
		}
		m.save(d, nb, hasDynamic)
		for ci, ch := range seg.children {
			if ci > 0 {
				if missLeaf >= 0 && !needWitness {
					return
				}
				m.restore(d, nb, hasDynamic)
			}
			walk(ch, d+1)
		}
	}

	if len(s.roots) > 1 {
		m.save(0, nb, hasDynamic)
	}
	for ri, r := range s.roots {
		if ri > 0 {
			if missLeaf >= 0 && !needWitness {
				break
			}
			m.restore(0, nb, hasDynamic)
		}
		walk(r, 1)
	}
	if missLeaf < 0 {
		return false, 0
	}
	return true, missLeaf
}

// detects reports whether the test detects the fault in every scenario,
// reusing the caller's machine; witness is the first undetected scenario in
// reference enumeration order when it does not.
//
// Static faults are checked once per placement class (placementClass) rather
// than once per placement. The witness stays exact: placements are visited
// in reference order, a class is resolved at its first (i.e. earliest)
// member, and class members share their first missing (init, combination)
// pair — so the first placement whose class misses, combined with the
// class's recorded miss, is precisely the scenario the uncached enumeration
// reports first.
//
// When the fault is lane-eligible (planLanes), every placement class is
// resolved by one bit-parallel pass up front; the placement loop then only
// reads the table, so the witness construction is shared with — and exactly
// as precise as — the scalar path.
func (s *Schedule) detects(m *machine, f linked.Fault) (bool, *Scenario, error) {
	if err := validateBindings(f); err != nil {
		return false, nil, err
	}
	k := f.Cells
	useClasses := canClassCache(f)
	var classes [classSpace]classResult
	if useClasses && s.planLanes(m, f) {
		s.laneClasses(m, &classes)
	}
	init := make([]fp.Value, k)
	detected := true
	var witness *Scenario
	err := s.forEachPlacement(k, func(placement []int) bool {
		var r classResult
		if useClasses {
			cr := &classes[placementClass(placement)]
			if !cr.done {
				miss, bits, leaf := s.runBlock(m, f, placement, init, true)
				*cr = classResult{done: true, miss: miss, initBits: bits, leaf: leaf}
			}
			r = *cr
		} else {
			r.miss, r.initBits, r.leaf = s.runBlock(m, f, placement, init, true)
		}
		if r.miss {
			detected = false
			for c := 0; c < k; c++ {
				init[c] = fp.ValueOf(uint8(r.initBits>>c) & 1)
			}
			witness = cloneScenario(Scenario{Placement: placement, Init: init, Orders: s.orderSets[r.leaf]})
			return false
		}
		return true
	})
	if err != nil {
		return false, nil, err
	}
	return detected, witness, nil
}

// DetectsFault reports whether the schedule's test detects the fault in
// every scenario. When it does not, the returned witness is one undetected
// scenario.
func (s *Schedule) DetectsFault(f linked.Fault) (bool, *Scenario, error) {
	m := s.getMachine()
	defer s.putMachine(m)
	return s.detects(m, f)
}

// missesFault reports whether the test fails to detect the fault in at
// least one scenario, reusing the caller's machine.
//
// Lane-eligible faults skip the placement loop entirely: the bit-parallel
// pass covers every placement class at once (every placement belongs to one
// of the k! classes, and planLanes guarantees all of them fit in the lanes),
// so "any lane misses any leaf" is exactly "any scenario misses".
func (s *Schedule) missesFault(m *machine, f linked.Fault) (bool, error) {
	if err := validateBindings(f); err != nil {
		return false, err
	}
	k := f.Cells
	useClasses := canClassCache(f)
	if useClasses && s.planLanes(m, f) {
		return s.runLanesAny(m), nil
	}
	var classes [classSpace]classResult
	init := make([]fp.Value, k)
	miss := false
	err := s.forEachPlacement(k, func(placement []int) bool {
		if useClasses {
			cr := &classes[placementClass(placement)]
			if !cr.done {
				missed, _, _ := s.runBlock(m, f, placement, init, false)
				*cr = classResult{done: true, miss: missed}
			}
			if cr.miss {
				miss = true
				return false
			}
			return true
		}
		if missed, _, _ := s.runBlock(m, f, placement, init, false); missed {
			miss = true
			return false
		}
		return true
	})
	return miss, err
}

// result simulates one fault to a Result, reusing the caller's machine.
func (s *Schedule) result(m *machine, f linked.Fault) Result {
	det, witness, err := s.detects(m, f)
	if err != nil {
		return Result{Fault: f, Err: err}
	}
	return Result{Fault: f, Detected: det, Witness: witness}
}
