package sim

import (
	"fmt"
	"io"
	"strings"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// TraceStep records one operation of a traced simulation.
type TraceStep struct {
	// Element and OpIndex locate the operation in the march test.
	Element int
	OpIndex int
	// Addr is the cell the operation addresses.
	Addr int
	// Op is the operation.
	Op fp.Op
	// GoodBefore/FaultyBefore are the fault-cell values before the step
	// (indexed like the fault's cells).
	GoodBefore, FaultyBefore []fp.Value
	// GoodAfter/FaultyAfter are the fault-cell values after the step.
	GoodAfter, FaultyAfter []fp.Value
	// Fired lists the indices of the fault's primitives that fired.
	Fired []int
	// GoodRet/FaultyRet are the read return values (VX for writes).
	GoodRet, FaultyRet fp.Value
	// Detected marks a read whose returns differ.
	Detected bool
}

// Trace is a recorded simulation of one scenario.
type Trace struct {
	Test     march.Test
	Fault    linked.Fault
	Scenario Scenario
	Steps    []TraceStep
	Detected bool
}

// TraceScenario replays one scenario of a fault under a march test and
// records every operation: the tool behind "why does this test miss this
// fault". The whole run is recorded even after the first detection.
func TraceScenario(t march.Test, f linked.Fault, s Scenario, cfg Config) (*Trace, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	size := cfg.size()
	if len(s.Placement) != f.Cells {
		return nil, fmt.Errorf("sim: scenario places %d cells, fault has %d", len(s.Placement), f.Cells)
	}
	if len(s.Orders) != len(t.Elems) {
		return nil, fmt.Errorf("sim: scenario resolves %d orders, test has %d elements", len(s.Orders), len(t.Elems))
	}

	m := newMachine(size)
	m.reset(f, s)
	m.settleStateFaults(f, s.Placement)

	tr := &Trace{Test: t, Fault: f, Scenario: *cloneScenario(s)}
	snapshot := func() ([]fp.Value, []fp.Value) {
		g := make([]fp.Value, f.Cells)
		fl := make([]fp.Value, f.Cells)
		for i, addr := range s.Placement {
			g[i] = m.good[addr]
			fl[i] = m.faulty[addr]
		}
		return g, fl
	}

	// The compiled stream provides the (element, op, addr) sequence; the
	// trace still runs the full two-machine reference step because it
	// records the good machine's cell values at every step.
	stream := compileStream(t, s.Orders, size)
	for i := range stream.steps {
		cs := &stream.steps[i]
		gb, fb := snapshot()
		step := TraceStep{
			Element: cs.elem, OpIndex: cs.opIdx, Addr: cs.addr, Op: cs.op,
			GoodBefore: gb, FaultyBefore: fb,
		}
		detected, retGood, retFaulty := m.step(f, s.Placement, cs.addr, cs.op)
		step.GoodRet, step.FaultyRet = retGood, retFaulty
		step.Detected = detected
		ga, fa := snapshot()
		step.GoodAfter, step.FaultyAfter = ga, fa
		for i := range f.FPs {
			// A primitive "fired" when its victim's faulty value diverged
			// from (or converged back to) the good machine at this step.
			v := f.FPs[i].V
			divergedNow := fa[v] != ga[v] && fb[v] == gb[v]
			maskedNow := fa[v] == ga[v] && fb[v] != gb[v] && f.FPs[i].FP.F == fa[v]
			if divergedNow || maskedNow {
				step.Fired = append(step.Fired, i)
			}
		}
		tr.Steps = append(tr.Steps, step)
		if detected {
			tr.Detected = true
		}
	}
	return tr, nil
}

// Render writes the trace as an aligned table. Only steps touching the
// fault's cells (or firing a primitive) are shown unless full is true.
func (tr *Trace) Render(w io.Writer, full bool) error {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %s vs %s\n", tr.Test.Name, tr.Fault.ID())
	fmt.Fprintf(&b, "scenario: %s\n", tr.Scenario.String())
	fmt.Fprintf(&b, "%-5s %-4s %-4s %-4s  %-10s %-10s %-6s %s\n",
		"elem", "op", "addr", "oper", "good", "faulty", "ret", "notes")
	touched := map[int]bool{}
	for _, a := range tr.Scenario.Placement {
		touched[a] = true
	}
	for _, s := range tr.Steps {
		if !full && !touched[s.Addr] && len(s.Fired) == 0 && !s.Detected {
			continue
		}
		ret := ""
		if s.Op.Kind == fp.OpRead {
			ret = s.GoodRet.String() + "/" + s.FaultyRet.String()
		}
		notes := ""
		if len(s.Fired) > 0 {
			parts := make([]string, len(s.Fired))
			for i, fi := range s.Fired {
				parts[i] = fmt.Sprintf("FP%d fired", fi+1)
			}
			notes = strings.Join(parts, ", ")
		}
		if s.Detected {
			if notes != "" {
				notes += "; "
			}
			notes += "DETECTED"
		}
		fmt.Fprintf(&b, "M%-4d %-4d %-4d %-4s  %-10s %-10s %-6s %s\n",
			s.Element, s.OpIndex, s.Addr, s.Op,
			valuesString(s.GoodAfter), valuesString(s.FaultyAfter), ret, notes)
	}
	if tr.Detected {
		b.WriteString("result: DETECTED\n")
	} else {
		b.WriteString("result: NOT DETECTED (masked or never sensitized)\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func valuesString(vals []fp.Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(v.String())
	}
	return b.String()
}
