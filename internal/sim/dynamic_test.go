package sim

import (
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// Dynamic faults need back-to-back operations: March RAW's write-read
// hammers sensitize the w-r faults, while tests without same-cell
// consecutive pairs (March C-) sensitize none.
func TestDynamicBackToBackSemantics(t *testing.T) {
	dRDF := mustSimple(t, "<0w0r0/1/1>")
	mustDetect(t, march.MarchRAW, dRDF, true)
	// March C- applies (r,w) per cell: the write is never followed by a
	// read on the same cell, so no dynamic fault is ever sensitized.
	mustDetect(t, march.MarchCMinus, dRDF, false)

	// A test with the two operations split across elements does not
	// sensitize the fault either: the intervening operations on other cells
	// break the back-to-back pair (for any memory with more than one cell).
	split := march.MustParse("split", "c(w0) ^(w0) ^(r0) c(r0)")
	mustDetect(t, split, dRDF, false)
	joined := march.MustParse("joined", "c(w0) ^(w0,r0) c(r0)")
	mustDetect(t, joined, dRDF, true)
}

// The deceptive read-read faults need a triple read: the second read flips
// the cell but returns the expected value.
func TestDynamicDeceptiveTripleRead(t *testing.T) {
	dDRDF := mustSimple(t, "<0r0r0/1/0>")
	double := march.MustParse("double", "c(w0) ^(r0,r0)")
	mustDetect(t, double, dDRDF, false)
	triple := march.MustParse("triple", "c(w0) ^(r0,r0,r0)")
	mustDetect(t, triple, dDRDF, true)
	// March RAW misses it (its r,r pairs are followed by a write).
	mustDetect(t, march.MarchRAW, dDRDF, false)
}

// Coverage anchors for the dynamic list (documented in EXPERIMENTS.md):
// March RAW covers the write-read faults but not the read-read deceptive
// ones; the static-fault tests cover far less.
func TestDynamicCoverageAnchors(t *testing.T) {
	dyn := faultlist.Dynamic()
	anchors := []struct {
		test march.Test
		want int
	}{
		{march.MarchRAW, 59},
		{march.MarchSS, 32},
		{march.MarchSL, 38},
		{march.MarchABL, 38},
		{march.MarchCMinus, 0},
	}
	for _, a := range anchors {
		r := Simulate(a.test, dyn, DefaultConfig())
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		if got := r.Detected(); got != a.want {
			t.Errorf("%s on dynamic list: %d/%d, previously measured %d", a.test.Name, got, r.Total(), a.want)
		}
	}
	// Every March RAW miss is a deceptive read-read fault.
	r := Simulate(march.MarchRAW, dyn, DefaultConfig())
	for _, m := range r.Missed() {
		c := m.Fault.FP1().FP.Class
		if c != fp.DyDRDF && c != fp.DyCFdr {
			t.Errorf("March RAW unexpectedly misses %s", m.Fault.ID())
		}
	}
}

// A wait operation breaks a back-to-back sequence.
func TestWaitBreaksDynamicSequence(t *testing.T) {
	dRDF := mustSimple(t, "<0w0r0/1/1>")
	interrupted := march.MustParse("interrupted", "c(w0) ^(w0,t,r0) c(r0)")
	mustDetect(t, interrupted, dRDF, false)
}

// Aggressor-side dynamic disturb coupling: the two-operation hammer on the
// aggressor flips the victim.
func TestDynamicCouplingDetection(t *testing.T) {
	dCFds, err := linked.NewSimple(fp.MustParseFP("<0w1r1;0/1/->"))
	if err != nil {
		t.Fatal(err)
	}
	// An element with a w1,r1 pair while the rest of the array is 0.
	hammer := march.MustParse("hammer", "c(w0) ^(r0,w1,r1,w0) c(r0)")
	mustDetect(t, hammer, dCFds, true)
	mustDetect(t, march.MarchCMinus, dCFds, false)
}
