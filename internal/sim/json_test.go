package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"marchgen/internal/linked"
	"marchgen/internal/march"
)

func TestReportJSON(t *testing.T) {
	faults := []linked.Fault{
		mustSimple(t, "<0w1/0/->"), // detected by MATS+
		mustSimple(t, "<0w0/1/->"), // missed by MATS+
	}
	r := Simulate(march.MATSPlus, faults, DefaultConfig())
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`"test":"MATS+"`,
		`"spec":"c(w0) ^(r0,w1) v(r1,w0)"`,
		`"length":5`,
		`"total":2`,
		`"detected":1`,
		`"fault":"Simple{WDF`, // encoding/json escapes the < > of the FP notation
		`(v0)}"`,
		`"witness":"cells@`,
		`"by_kind":[{"kind":"Simple","detected":1,"total":2}]`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report JSON missing %s:\n%s", want, s)
		}
	}
}

func TestReportJSONFullCoverageOmitsMissed(t *testing.T) {
	faults := []linked.Fault{mustSimple(t, "<0w1/0/->")}
	r := Simulate(march.MarchSS, faults, DefaultConfig())
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"missed"`) {
		t.Errorf("full-coverage report must omit the missed list: %s", data)
	}
}
