package sim

import (
	"fmt"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// forEachScenario enumerates every concrete scenario for a fault under the
// configuration and invokes fn; enumeration stops early when fn returns
// false. The callback receives a scenario whose slices are reused across
// invocations; it must copy them if it retains them.
//
// This is the uncompiled reference enumeration; production paths go through
// Schedule.runTree, which walks the identical scenario space over precompiled
// op streams (schedule_test.go pins verdict and witness equivalence).
func forEachScenario(t march.Test, f linked.Fault, cfg Config, fn func(Scenario) bool) error {
	size := cfg.size()
	k := f.Cells
	if k >= size {
		return fmt.Errorf("sim: memory of %d cells cannot place a %d-cell fault with a bystander", size, k)
	}

	orderSets, err := orderCombinations(t, cfg)
	if err != nil {
		return err
	}

	placement := make([]int, k)
	used := make([]bool, size)
	init := make([]fp.Value, k)

	var place func(depth int) bool
	place = func(depth int) bool {
		if depth == k {
			// Enumerate initial values of the fault cells.
			for bits := 0; bits < 1<<k; bits++ {
				for c := 0; c < k; c++ {
					init[c] = fp.ValueOf(uint8(bits>>c) & 1)
				}
				for _, orders := range orderSets {
					if !fn(Scenario{Placement: placement, Init: init, Orders: orders}) {
						return false
					}
				}
			}
			return true
		}
		for a := 0; a < size; a++ {
			if used[a] {
				continue
			}
			used[a] = true
			placement[depth] = a
			ok := place(depth + 1)
			used[a] = false
			if !ok {
				return false
			}
		}
		return true
	}
	place(0)
	return nil
}

// orderCombinations resolves the ⇕ elements of a test into the concrete
// address-order assignments the configuration requires.
func orderCombinations(t march.Test, cfg Config) ([][]march.AddrOrder, error) {
	var anyIdx []int
	base := make([]march.AddrOrder, len(t.Elems))
	for i, e := range t.Elems {
		base[i] = e.Order
		if e.Order == march.Any {
			anyIdx = append(anyIdx, i)
		}
	}
	if !cfg.ExhaustiveOrders || len(anyIdx) == 0 {
		resolved := make([]march.AddrOrder, len(base))
		for i, o := range base {
			if o == march.Any {
				o = march.Up
			}
			resolved[i] = o
		}
		return [][]march.AddrOrder{resolved}, nil
	}
	maxAny := cfg.MaxAnyElements
	if maxAny <= 0 {
		maxAny = 12
	}
	if len(anyIdx) > maxAny {
		return nil, fmt.Errorf("sim: test %q has %d ⇕ elements; exhaustive order expansion capped at %d", t.Name, len(anyIdx), maxAny)
	}
	n := 1 << len(anyIdx)
	out := make([][]march.AddrOrder, 0, n)
	for bits := 0; bits < n; bits++ {
		orders := make([]march.AddrOrder, len(base))
		copy(orders, base)
		for j, idx := range anyIdx {
			if bits>>j&1 == 0 {
				orders[idx] = march.Up
			} else {
				orders[idx] = march.Down
			}
		}
		out = append(out, orders)
	}
	return out, nil
}

// cloneScenario deep-copies a scenario for retention as a witness.
func cloneScenario(s Scenario) *Scenario {
	return &Scenario{
		Placement: append([]int(nil), s.Placement...),
		Init:      append([]fp.Value(nil), s.Init...),
		Orders:    append([]march.AddrOrder(nil), s.Orders...),
	}
}

// DetectsFault reports whether the test detects the fault in every scenario.
// When it does not, the returned witness is one undetected scenario.
//
// The schedule is compiled once per call; callers checking one test against
// many faults should build a Schedule explicitly and reuse it.
func DetectsFault(t march.Test, f linked.Fault, cfg Config) (bool, *Scenario, error) {
	s, err := NewSchedule(t, cfg)
	if err != nil {
		return false, nil, err
	}
	return s.DetectsFault(f)
}
