package sim

import (
	"sync"
	"sync/atomic"

	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// FullCoverage reports whether the test detects every fault in the list,
// stopping at the first miss. It is the hot path of the generation
// algorithm's minimization loop (package core), which only needs a yes/no
// answer per candidate. On a miss, the missed fault is returned.
//
// The check fans out across Config.Workers goroutines with early
// cancellation: once any worker finds a miss the others stop at their next
// fault boundary.
func FullCoverage(t march.Test, faults []linked.Fault, cfg Config) (bool, *linked.Fault, error) {
	if len(faults) == 0 {
		return true, nil, nil
	}
	workers := cfg.workers()
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers <= 1 {
		m := newMachine(cfg.size())
		for i := range faults {
			miss, err := missesFault(m, t, faults[i], cfg)
			if err != nil {
				return false, nil, err
			}
			if miss {
				return false, &faults[i], nil
			}
		}
		return true, nil, nil
	}

	var (
		stop     atomic.Bool
		next     atomic.Int64
		mu       sync.Mutex
		missIdx  = -1
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := newMachine(cfg.size())
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(faults) {
					return
				}
				miss, err := missesFault(m, t, faults[i], cfg)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
				if miss {
					mu.Lock()
					if missIdx < 0 || i < missIdx {
						missIdx = i
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return false, nil, firstErr
	}
	if missIdx >= 0 {
		return false, &faults[missIdx], nil
	}
	return true, nil, nil
}

// missesFault reports whether the test fails to detect the fault in at
// least one scenario, reusing the caller's machine.
func missesFault(m *machine, t march.Test, f linked.Fault, cfg Config) (bool, error) {
	miss := false
	err := forEachScenario(t, f, cfg, func(s Scenario) bool {
		if !m.run(t, f, s, cfg.size()) {
			miss = true
			return false
		}
		return true
	})
	return miss, err
}
