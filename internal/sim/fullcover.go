package sim

import (
	"sync"
	"sync/atomic"

	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// FullCoverage reports whether the test detects every fault in the list,
// stopping at the first miss. It is the hot path of the generation
// algorithm's minimization loop (package core), which only needs a yes/no
// answer per candidate. On a miss, the missed fault is returned.
//
// An empty fault list is vacuously covered (consistent with Report.Full).
// The result is deterministic regardless of Config.Workers: the returned
// miss (or error) is always the one the sequential scan would hit first.
func FullCoverage(t march.Test, faults []linked.Fault, cfg Config) (bool, *linked.Fault, error) {
	if len(faults) == 0 {
		return true, nil, nil
	}
	s, err := NewSchedule(t, cfg)
	if err != nil {
		return false, nil, err
	}
	return s.FullCoverage(faults)
}

// FullCoverage reports whether the schedule's test detects every fault in
// the list, fanning out across Config.Workers goroutines with early
// cancellation. See the package-level FullCoverage for the semantics.
func (s *Schedule) FullCoverage(faults []linked.Fault) (bool, *linked.Fault, error) {
	if len(faults) == 0 {
		return true, nil, nil
	}
	workers := s.cfg.workers()
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers <= 1 {
		m := s.getMachine()
		defer s.putMachine(m)
		for i := range faults {
			miss, err := s.missesFault(m, faults[i])
			if err != nil {
				return false, nil, err
			}
			if miss {
				return false, &faults[i], nil
			}
		}
		return true, nil, nil
	}

	// Parallel scan with deterministic outcome: the first event (miss or
	// error) in fault-list order wins, exactly as in the sequential path.
	// bound is the lowest fault index with a recorded event; workers stop
	// claiming new indices at or above it, but every index below it is
	// still simulated to completion, so the minimum is exact.
	var (
		next  atomic.Int64
		bound atomic.Int64
		mu    sync.Mutex
		evErr error
		wg    sync.WaitGroup
	)
	bound.Store(int64(len(faults)))
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if int64(i) < bound.Load() {
			bound.Store(int64(i))
			evErr = err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := s.getMachine()
			defer s.putMachine(m)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(faults) || int64(i) >= bound.Load() {
					return
				}
				miss, err := s.missesFault(m, faults[i])
				if err != nil {
					record(i, err)
					return
				}
				if miss {
					record(i, nil)
					return
				}
			}
		}()
	}
	wg.Wait()
	idx := int(bound.Load())
	if idx >= len(faults) {
		return true, nil, nil
	}
	if evErr != nil {
		return false, nil, evErr
	}
	return false, &faults[idx], nil
}
