package sim

import (
	"marchgen/internal/fp"
	"marchgen/internal/linked"
)

// The bit-parallel lane engine.
//
// For a static fault the compiled schedule already collapses placements into
// placement classes (placementClass): all that distinguishes the scenarios
// of one fault is the relative address order of its k cells (k! classes) and
// their initial values (2^k backgrounds). That is at most 3!·2³ = 48
// independent scenario variants per order combination — and every one of
// them runs the SAME operation stream, because the stream depends only on
// (test, orders, size), never on the fault.
//
// So instead of stepping the variants one at a time, the lane engine packs
// them into the bits of uint64 words, one bit per lane ("lane" = one
// class × background variant), PPSFP-style:
//
//   - lane layout: lane p·2^k + b is the representative placement of the
//     p-th cell permutation (cells packed into addresses 0..k-1, cell
//     perm[a] at address a) under init background b (bit c of b is cell c's
//     initial value);
//   - state: vs[c] holds cell c's faulty value across all lanes (bit set =
//     the cell reads 1 in that lane);
//   - the step kernels for write, read and fault effects are bitwise:
//     trigger conditions become AND-masks over vs and the placement masks,
//     effects become masked set/clear, and a read accumulates a detect mask
//     by XOR-ing the lanes' faulty read values against the shared good
//     trace;
//   - the order-choice trie is walked exactly like the scalar runTree, with
//     k+1 words of snapshot per depth instead of a full memory image.
//
// Eligibility (planLanes) is conservative: any binding whose semantics do
// not decompose into per-lane bitwise steps — dynamic (armed) primitives,
// wait-sensitized data retention, non-binary fault values, aggressor=victim
// hand-builts — and any fault with more than maxLaneCells cells falls back
// to the scalar path, which remains the single source of truth for those.
// State-triggered primitives (SF, CFst) DO decompose: the settle fixpoint is
// a masked fixpoint iteration with the same oscillation bound as the scalar
// settleCtx, so the big SF/CFst-heavy fault lists stay on the fast path.
//
// Verdicts and witnesses are bit-identical to the scalar path: the per-class
// fold (laneClasses) recovers, for every class, the first missing init
// background and the lowest missing order-combination leaf — exactly the
// classResult the scalar runBlock/runTree pair memoizes — and the ordinary
// placement loop then reconstructs the reference-order witness from it.

// maxLaneCells is the largest fault cell count the lane engine packs; with
// k ≤ 3, k!·2^k ≤ 48 lanes fit one uint64 word.
const maxLaneCells = maxClassCells

// lanePerms[k] enumerates the cell permutations of a k-cell fault. perm[a]
// is the cell placed at address a; the enumeration order fixes the lane
// block order (lane block p covers permutation lanePerms[k][p]).
var lanePerms = [maxLaneCells + 1][][]int{
	1: {{0}},
	2: {{0, 1}, {1, 0}},
	3: {
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
		{1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	},
}

// laneOpCtx is the lane-resolved form of one operation-triggered static
// binding: everything the bitwise trigger/effect kernel needs.
type laneOpCtx struct {
	roleCell  int // cell the sensitizing operation addresses
	vCell     int // victim cell (effect target)
	aCell     int // aggressor cell, -1 when none
	opKind    fp.OpKind
	opData    fp.Value // write data of the sensitizing operation
	aInit     fp.Value // VX when unconstrained
	vInit     fp.Value // VX when unconstrained
	fvBit     bool     // F == V1
	rOverride bool     // binary R on a victim read: override the read value
	rBit      bool     // R == V1
}

// laneStateCtx is the lane-resolved form of one state-triggered binding
// that can actually fire (binary VInit, F ≠ VInit).
type laneStateCtx struct {
	vCell int
	aCell int      // -1 when none
	aInit fp.Value // VX when unconstrained
	vInit fp.Value // binary
	fvBit bool     // F == V1
}

// lanePlan is the compiled per-fault lane layout: placement masks, initial
// backgrounds and binding kernels. It lives on the pooled machine and is
// rebuilt (without allocating, steady-state) by planLanes for every fault.
type lanePlan struct {
	k         int
	lanes     int
	full      uint64 // mask of the populated lanes
	hasState  bool
	nFPs      int // settle oscillation bound, = len(f.FPs) like the scalar path
	opCtxs    []laneOpCtx
	stateCtxs []laneStateCtx
	matched   []uint64 // per-opCtx matched-lane scratch, valid within a step
	// hit[a][c] masks the lanes in which cell c sits at address a (zero for
	// a ≥ k: a bystander address in every lane).
	hit [maxLaneCells][maxLaneCells]uint64
	// initMask[c] masks the lanes in which cell c starts at 1.
	initMask  [maxLaneCells]uint64
	classKeys []int // placementClass rank of each permutation's placements
}

// laneValue accepts the three legal memory values; anything else is a
// hand-built corruption the bitwise kernels cannot represent.
func laneValue(v fp.Value) bool { return v == fp.V0 || v == fp.V1 || v == fp.VX }

// planLanes decides lane eligibility for a fault and, when eligible,
// compiles the machine's lane plan. It must only say yes when the bitwise
// kernels reproduce the scalar semantics exactly; every fallback is a
// correctness fallback, not an optimization.
func (s *Schedule) planLanes(m *machine, f linked.Fault) bool {
	if s.cfg.DisableLanes || !s.laneWrites {
		return false
	}
	k := f.Cells
	if k < 1 || k > maxLaneCells || k >= s.size {
		return false
	}
	p := &m.plan
	p.k = k
	p.nFPs = len(f.FPs)
	p.opCtxs = p.opCtxs[:0]
	p.stateCtxs = p.stateCtxs[:0]
	for i := range f.FPs {
		b := &f.FPs[i]
		pf := &b.FP
		if pf.IsDynamic() {
			return false // arming bookkeeping stays scalar
		}
		if !pf.F.IsBinary() || !laneValue(pf.VInit) {
			return false
		}
		aInit := pf.AInit
		if pf.Cells != 2 {
			// MatchesOp only constrains the aggressor state of two-cell
			// primitives; mirror bindFault's normalization.
			aInit = fp.VX
		}
		if !laneValue(aInit) {
			return false
		}
		if b.A >= 0 && b.A == b.V {
			// Hand-built aggressor=victim binding: the scalar hit test
			// resolves the role conflict victim-first; keep that subtlety in
			// one place.
			return false
		}
		inert := aInit != fp.VX && b.A < 0 // bindFault neuters these entirely
		switch pf.Trigger {
		case fp.TrigState:
			if inert || !pf.VInit.IsBinary() || pf.F == pf.VInit {
				// Never sensitizes (or never changes the victim): the scalar
				// settle skips it too. It still counts toward nFPs.
				continue
			}
			p.stateCtxs = append(p.stateCtxs, laneStateCtx{
				vCell: b.V, aCell: b.A, aInit: aInit, vInit: pf.VInit,
				fvBit: pf.F == fp.V1,
			})
		case fp.TrigOp:
			if pf.Op.Kind == fp.OpWait {
				return false // data retention is time-based; scalar only
			}
			if inert {
				continue
			}
			roleCell := -1
			switch pf.OpRole {
			case fp.RoleVictim:
				roleCell = b.V
			case fp.RoleAggressor:
				roleCell = b.A
			}
			if roleCell < 0 {
				continue // no cell to address: can never match
			}
			if pf.Op.Kind != fp.OpRead && pf.Op.Kind != fp.OpWrite {
				continue // zero Op (hand-built): can never match
			}
			if pf.Op.Kind == fp.OpWrite && !pf.Op.Data.IsBinary() {
				continue // a don't-care write datum matches no binary stream write
			}
			p.opCtxs = append(p.opCtxs, laneOpCtx{
				roleCell: roleCell, vCell: b.V, aCell: b.A,
				opKind: pf.Op.Kind, opData: pf.Op.Data,
				aInit: aInit, vInit: pf.VInit,
				fvBit:     pf.F == fp.V1,
				rOverride: pf.OpRole == fp.RoleVictim && pf.R.IsBinary(),
				rBit:      pf.R == fp.V1,
			})
		default:
			return false
		}
	}
	p.hasState = len(p.stateCtxs) > 0

	perms := lanePerms[k]
	lanesPerPerm := 1 << k
	p.lanes = len(perms) * lanesPerPerm
	p.full = uint64(1)<<p.lanes - 1
	blockFull := uint64(1)<<lanesPerPerm - 1
	var blockInit [maxLaneCells]uint64
	for c := 0; c < k; c++ {
		for b := 0; b < lanesPerPerm; b++ {
			if b>>c&1 == 1 {
				blockInit[c] |= uint64(1) << b
			}
		}
	}
	for a := range p.hit {
		for c := range p.hit[a] {
			p.hit[a][c] = 0
		}
	}
	for c := range p.initMask {
		p.initMask[c] = 0
	}
	p.classKeys = p.classKeys[:0]
	for pi, perm := range perms {
		shift := pi * lanesPerPerm
		key := 0
		for a := 0; a < k; a++ {
			c := perm[a]
			p.hit[a][c] |= blockFull << shift
			key = key*classKeyBase + c + 1
		}
		for c := 0; c < k; c++ {
			p.initMask[c] |= blockInit[c] << shift
		}
		p.classKeys = append(p.classKeys, key)
	}
	if cap(p.matched) < len(p.opCtxs) {
		p.matched = make([]uint64, len(p.opCtxs))
	}
	p.matched = p.matched[:len(p.opCtxs)]
	return true
}

// settle applies the state-triggered primitives until a per-lane fixpoint,
// with the scalar settleCtx's oscillation bound: nFPs+1 iterations. Within
// an iteration the primitives apply in binding order, so a primitive's
// effect is visible to the conditions of the next — exactly the scalar
// sequence, evaluated on 48 lanes at once. Lanes already at a fixpoint are
// untouched by further iterations (the fixpoint is absorbing), so the shared
// iteration count never desynchronizes them from the scalar path.
func (p *lanePlan) settle(vs *[maxLaneCells]uint64) {
	for iter := 0; iter <= p.nFPs; iter++ {
		progress := uint64(0)
		for i := range p.stateCtxs {
			c := &p.stateCtxs[i]
			cond := p.full
			if c.aInit != fp.VX {
				mask := vs[c.aCell]
				if c.aInit == fp.V0 {
					mask = ^mask
				}
				cond &= mask
			}
			mask := vs[c.vCell]
			if c.vInit == fp.V0 {
				mask = ^mask
			}
			cond &= mask
			if cond == 0 {
				continue
			}
			// planLanes guarantees F ≠ VInit, so every matching lane flips.
			if c.fvBit {
				vs[c.vCell] |= cond
			} else {
				vs[c.vCell] &^= cond
			}
			progress |= cond
		}
		if progress == 0 {
			return
		}
	}
}

// runSteps advances every lane over one compiled segment and returns the
// accumulated detect mask. It mirrors the scalar runSteps stage for stage:
// triggers on the pre-operation state, base write semantics, effects in
// binding order (with read-value overrides), then settling.
func (p *lanePlan) runSteps(steps []opStep, vs *[maxLaneCells]uint64, detect uint64) uint64 {
	k := p.k
	full := p.full
	for si := range steps {
		st := &steps[si]
		op := st.op
		addr := st.addr
		if op.Kind == fp.OpWait {
			// No lane-eligible binding is wait-sensitized and the state is
			// at a settle fixpoint entering every step, so time passing
			// changes nothing. (Disarming does not apply: no dynamics.)
			continue
		}
		if addr >= k {
			// The representative placements pack the fault cells into
			// addresses 0..k-1, so this address is a bystander in EVERY
			// lane: its faulty value equals the good trace by induction and
			// no primitive can match it.
			continue
		}
		hitRow := &p.hit[addr]

		// 1. Trigger masks against the pre-operation lane state.
		anyMatched := uint64(0)
		for i := range p.opCtxs {
			c := &p.opCtxs[i]
			mm := uint64(0)
			if op.Kind == c.opKind && (op.Kind != fp.OpWrite || op.Data == c.opData) {
				mm = hitRow[c.roleCell]
				if c.aInit != fp.VX {
					cond := vs[c.aCell]
					if c.aInit == fp.V0 {
						cond = ^cond
					}
					mm &= cond
				}
				if c.vInit != fp.VX {
					cond := vs[c.vCell]
					if c.vInit == fp.V0 {
						cond = ^cond
					}
					mm &= cond
				}
			}
			p.matched[i] = mm
			anyMatched |= mm
		}

		// 2. Base operation semantics. Reads capture the pre-effect faulty
		// values; the good value comes from the compiled trace (or the
		// lane's init background before the stream's first write).
		isRead := op.Kind == fp.OpRead
		var faultyRead, goodMask uint64
		if isRead {
			if st.goodKnown {
				if st.good == fp.V1 {
					goodMask = full
				}
			} else {
				for c := 0; c < k; c++ {
					goodMask |= hitRow[c] & p.initMask[c]
				}
			}
			for c := 0; c < k; c++ {
				faultyRead |= hitRow[c] & vs[c]
			}
		} else { // write (waits were handled above)
			if op.Data == fp.V1 {
				for c := 0; c < k; c++ {
					vs[c] |= hitRow[c]
				}
			} else {
				for c := 0; c < k; c++ {
					vs[c] &^= hitRow[c]
				}
			}
		}

		// 3. Fault effects, in binding order (FP1 before FP2).
		if anyMatched != 0 {
			for i := range p.opCtxs {
				mm := p.matched[i]
				if mm == 0 {
					continue
				}
				c := &p.opCtxs[i]
				if c.fvBit {
					vs[c.vCell] |= mm
				} else {
					vs[c.vCell] &^= mm
				}
				// mm ⊆ hit[addr][vCell] when the role is victim, so the
				// scalar's "victim is the addressed cell" condition is
				// already folded into the mask.
				if isRead && c.rOverride {
					if c.rBit {
						faultyRead |= mm
					} else {
						faultyRead &^= mm
					}
				}
			}
		}

		// 4. Settle. The scalar path settles only when the step changed a
		// cell; settling a fixpoint is a no-op, so settling on every write
		// is the same state for strictly less bookkeeping.
		if p.hasState && (!isRead || anyMatched != 0) {
			p.settle(vs)
		}

		if isRead {
			detect |= faultyRead ^ goodMask
		}
	}
	return detect
}

// laneInitState seeds the lane state for a fresh block: every cell holds its
// background bit, then state faults settle — the lane image of runTree's
// reset + initial settleCtx.
func (p *lanePlan) laneInitState(vs *[maxLaneCells]uint64) {
	for c := 0; c < maxLaneCells; c++ {
		vs[c] = 0
	}
	for c := 0; c < p.k; c++ {
		vs[c] = p.initMask[c]
	}
	if p.hasState {
		p.settle(vs)
	}
}

const laneSnapWords = maxLaneCells + 1 // k cell words + the detect mask

// runLanesAll walks the order-choice trie once for all lanes and fills the
// machine's per-leaf miss masks: bit l of laneLeafMiss[leaf] is set when
// lane l fails to detect the fault under order combination leaf. Subtrees
// whose prefix already detects in every lane are pruned whole, leaving their
// leaves at the all-detected zero mask.
func (s *Schedule) runLanesAll(m *machine) []uint64 {
	p := &m.plan
	if cap(m.laneLeafMiss) < len(s.orderSets) {
		m.laneLeafMiss = make([]uint64, len(s.orderSets))
	}
	leafMiss := m.laneLeafMiss[:len(s.orderSets)]
	for i := range leafMiss {
		leafMiss[i] = 0
	}
	var vs [maxLaneCells]uint64
	p.laneInitState(&vs)
	detect := uint64(0)

	if len(s.roots) == 0 {
		// A test with no elements performs no reads: every lane misses the
		// single (empty) order combination.
		leafMiss[0] = p.full
		return leafMiss
	}

	depth := len(s.test.Elems) + 1
	if cap(m.laneSnap) < depth*laneSnapWords {
		m.laneSnap = make([]uint64, depth*laneSnapWords)
	}
	snap := m.laneSnap[:depth*laneSnapWords]
	save := func(d int) {
		o := d * laneSnapWords
		copy(snap[o:o+maxLaneCells], vs[:])
		snap[o+maxLaneCells] = detect
	}
	restore := func(d int) {
		o := d * laneSnapWords
		copy(vs[:], snap[o:o+maxLaneCells])
		detect = snap[o+maxLaneCells]
	}

	var walk func(idx, d int)
	walk = func(idx, d int) {
		seg := &s.segs[idx]
		detect = p.runSteps(seg.steps, &vs, detect)
		if detect == p.full {
			return // every lane detected under this prefix
		}
		if seg.leaf >= 0 {
			leafMiss[seg.leaf] = ^detect & p.full
			return
		}
		if len(seg.children) == 1 {
			walk(seg.children[0], d+1)
			return
		}
		save(d)
		for ci, ch := range seg.children {
			if ci > 0 {
				restore(d)
			}
			walk(ch, d+1)
		}
	}

	if len(s.roots) > 1 {
		save(0)
	}
	for ri, r := range s.roots {
		if ri > 0 {
			restore(0)
		}
		walk(r, 1)
	}
	return leafMiss
}

// runLanesAny is the missesFault variant of the walk: it stops at the first
// leaf any lane misses, without filling the per-leaf masks.
func (s *Schedule) runLanesAny(m *machine) bool {
	p := &m.plan
	var vs [maxLaneCells]uint64
	p.laneInitState(&vs)
	detect := uint64(0)

	if len(s.roots) == 0 {
		return true
	}

	depth := len(s.test.Elems) + 1
	if cap(m.laneSnap) < depth*laneSnapWords {
		m.laneSnap = make([]uint64, depth*laneSnapWords)
	}
	snap := m.laneSnap[:depth*laneSnapWords]

	var walk func(idx, d int) bool
	walk = func(idx, d int) bool {
		seg := &s.segs[idx]
		detect = p.runSteps(seg.steps, &vs, detect)
		if detect == p.full {
			return false
		}
		if seg.leaf >= 0 {
			return true // some lane reached the end of the test undetected
		}
		if len(seg.children) == 1 {
			return walk(seg.children[0], d+1)
		}
		o := d * laneSnapWords
		copy(snap[o:o+maxLaneCells], vs[:])
		snap[o+maxLaneCells] = detect
		for ci, ch := range seg.children {
			if ci > 0 {
				copy(vs[:], snap[o:o+maxLaneCells])
				detect = snap[o+maxLaneCells]
			}
			if walk(ch, d+1) {
				return true
			}
		}
		return false
	}

	if len(s.roots) > 1 {
		copy(snap[:maxLaneCells], vs[:])
		snap[maxLaneCells] = detect
	}
	for ri, r := range s.roots {
		if ri > 0 {
			copy(vs[:], snap[:maxLaneCells])
			detect = snap[maxLaneCells]
		}
		if walk(r, 1) {
			return true
		}
	}
	return false
}

// laneClasses resolves every placement class of the planned fault with one
// bit-parallel trie walk and writes the results into the class table. For
// each permutation's lane block it recovers the scalar runBlock contract:
// the FIRST missing init background (backgrounds ascending) and, within it,
// the LOWEST missing orderSets leaf — so the placement loop reconstructs
// witnesses in exact reference order.
func (s *Schedule) laneClasses(m *machine, classes *[classSpace]classResult) {
	p := &m.plan
	leafMiss := s.runLanesAll(m)
	lanesPerPerm := 1 << p.k
	for pi, key := range p.classKeys {
		base := pi * lanesPerPerm
		res := classResult{done: true}
	backgrounds:
		for b := 0; b < lanesPerPerm; b++ {
			bit := uint64(1) << (base + b)
			for leaf := range leafMiss {
				if leafMiss[leaf]&bit != 0 {
					res.miss, res.initBits, res.leaf = true, b, leaf
					break backgrounds
				}
			}
		}
		classes[key] = res
	}
}
