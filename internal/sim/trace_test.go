package sim

import (
	"bytes"
	"strings"
	"testing"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

func traceScenario(t *testing.T, m march.Test, f linked.Fault, init fp.Value) *Trace {
	t.Helper()
	orders := make([]march.AddrOrder, len(m.Elems))
	for i, e := range m.Elems {
		orders[i] = e.Order
		if orders[i] == march.Any {
			orders[i] = march.Up
		}
	}
	placement := make([]int, f.Cells)
	inits := make([]fp.Value, f.Cells)
	for i := range placement {
		placement[i] = i
		inits[i] = init
	}
	tr, err := TraceScenario(m, f, Scenario{Placement: placement, Init: inits, Orders: orders}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// The documented March LF1 miss (TF up masked by a pre-empting deceptive
// read) replayed step by step: the trace must show the fault firing without
// any detection.
func TestTraceMaskedFault(t *testing.T) {
	lf, err := linked.NewLF1(fp.MustParseFP("<0w1/0/->"), fp.MustParseFP("<0r0/1/0>"))
	if err != nil {
		t.Fatal(err)
	}
	tr := traceScenario(t, march.MarchLF1, lf, fp.V0)
	if tr.Detected {
		t.Fatal("this scenario is the documented March LF1 miss; it must not detect")
	}
	fired := false
	for _, s := range tr.Steps {
		if s.Detected {
			t.Error("no step may detect")
		}
		if len(s.Fired) > 0 {
			fired = true
		}
	}
	if !fired {
		t.Error("the masked fault must fire at least once in the trace")
	}
	var buf bytes.Buffer
	if err := tr.Render(&buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NOT DETECTED", "fired", "March LF1"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

// A detected scenario shows the detecting read.
func TestTraceDetectedFault(t *testing.T) {
	sf, err := linked.NewSimple(fp.MustParseFP("<0w1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	tr := traceScenario(t, march.MATSPlus, sf, fp.V0)
	if !tr.Detected {
		t.Fatal("MATS+ detects the transition fault in this scenario")
	}
	sawDetect := false
	for _, s := range tr.Steps {
		if s.Detected {
			sawDetect = true
			if s.Op.Kind != fp.OpRead {
				t.Error("detection must happen on a read")
			}
			if s.GoodRet == s.FaultyRet {
				t.Error("detected step must have diverging read returns")
			}
		}
	}
	if !sawDetect {
		t.Error("no detecting step recorded")
	}
	var buf bytes.Buffer
	if err := tr.Render(&buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DETECTED") {
		t.Error("rendered trace must flag the detection")
	}
}

// The trace agrees with DetectsFault on the scenario outcome.
func TestTraceAgreesWithSimulator(t *testing.T) {
	lf, err := linked.NewLF2aa(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<1w0;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []march.Test{march.MarchCMinus, march.MarchSL, march.MATSPlus} {
		tr := traceScenario(t, m, lf, fp.V0)
		// Replay the same scenario with the plain simulator.
		mach := newMachine(4)
		same := mach.run(m, lf, tr.Scenario, 4)
		if same != tr.Detected {
			t.Errorf("%s: trace says detected=%v, simulator says %v", m.Name, tr.Detected, same)
		}
	}
}

func TestTraceScenarioValidation(t *testing.T) {
	sf, err := linked.NewSimple(fp.MustParseFP("<0w1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong placement arity.
	_, err = TraceScenario(march.MATSPlus, sf, Scenario{
		Placement: []int{0, 1},
		Init:      []fp.Value{fp.V0, fp.V0},
		Orders:    []march.AddrOrder{march.Up, march.Up, march.Down},
	}, DefaultConfig())
	if err == nil {
		t.Error("placement arity mismatch must error")
	}
	// Wrong order arity.
	_, err = TraceScenario(march.MATSPlus, sf, Scenario{
		Placement: []int{0},
		Init:      []fp.Value{fp.V0},
		Orders:    []march.AddrOrder{march.Up},
	}, DefaultConfig())
	if err == nil {
		t.Error("order arity mismatch must error")
	}
}
