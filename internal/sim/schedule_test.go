package sim

import (
	"fmt"
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// referenceDetects is the uncompiled reference implementation of
// DetectsFault: the naive scenario enumeration (forEachScenario) driving the
// two-memory lockstep machine (machine.run). The compiled schedule must
// reproduce its verdicts — and witnesses — bit for bit.
func referenceDetects(t march.Test, f linked.Fault, cfg Config) (bool, *Scenario, error) {
	m := newMachine(cfg.size())
	detected := true
	var witness *Scenario
	err := forEachScenario(t, f, cfg, func(sc Scenario) bool {
		if !m.run(t, f, sc, cfg.size()) {
			detected = false
			witness = cloneScenario(sc)
			return false
		}
		return true
	})
	if err != nil {
		return false, nil, err
	}
	return detected, witness, nil
}

func assertSameOutcome(t *testing.T, label string, refDet, schedDet bool, refWit, schedWit *Scenario, refErr, schedErr error) {
	t.Helper()
	if (refErr != nil) != (schedErr != nil) {
		t.Fatalf("%s: reference err=%v, schedule err=%v", label, refErr, schedErr)
	}
	if refErr != nil {
		return
	}
	if refDet != schedDet {
		t.Fatalf("%s: reference detected=%v, schedule detected=%v", label, refDet, schedDet)
	}
	if (refWit == nil) != (schedWit == nil) {
		t.Fatalf("%s: reference witness=%v, schedule witness=%v", label, refWit, schedWit)
	}
	if refWit != nil && refWit.String() != schedWit.String() {
		t.Fatalf("%s: witness mismatch:\n  reference: %s\n  schedule:  %s", label, refWit, schedWit)
	}
}

// TestScheduleMatchesReference pins the tentpole's correctness contract:
// for every library march test and every shipped fault list, the compiled
// schedule produces the same verdict and the same witness scenario as the
// uncompiled reference path, under both the exhaustive and the lazy order
// configurations.
func TestScheduleMatchesReference(t *testing.T) {
	lists := []struct {
		name   string
		faults []linked.Fault
		short  bool // run even with -short
	}{
		{"List2", faultlist.List2(), true},
		{"SimpleStatic", faultlist.SimpleStatic(), true},
		{"Dynamic", faultlist.Dynamic(), true},
		{"List1", faultlist.List1(), false},
	}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"exhaustive", DefaultConfig()},
		{"lazy", Config{Size: 4}},
		{"size5", Config{Size: 5, ExhaustiveOrders: true}},
		{"scalar", Config{Size: 4, ExhaustiveOrders: true, DisableLanes: true}},
	}
	for _, lc := range lists {
		for _, cc := range configs {
			if !lc.short && (testing.Short() || cc.name == "size5") {
				continue // List1 × full library is the expensive cell; cover it once
			}
			t.Run(lc.name+"/"+cc.name, func(t *testing.T) {
				for _, mt := range march.Lib() {
					sched, err := NewSchedule(mt, cc.cfg)
					if err != nil {
						t.Fatalf("%s: NewSchedule: %v", mt.Name, err)
					}
					for _, f := range lc.faults {
						refDet, refWit, refErr := referenceDetects(mt, f, cc.cfg)
						schedDet, schedWit, schedErr := sched.DetectsFault(f)
						assertSameOutcome(t, fmt.Sprintf("%s vs %s", mt.Name, f.ID()),
							refDet, schedDet, refWit, schedWit, refErr, schedErr)
					}
				}
			})
		}
	}
}

// TestScheduleScenarioCount checks ScenarioCount against the reference
// enumeration's actual cardinality.
func TestScheduleScenarioCount(t *testing.T) {
	cfg := DefaultConfig()
	for _, mt := range []march.Test{march.MATSPlus, march.MarchSL, march.MarchRAW} {
		sched, err := NewSchedule(mt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range faultlist.List2() {
			want := 0
			if err := forEachScenario(mt, f, cfg, func(Scenario) bool { want++; return true }); err != nil {
				t.Fatal(err)
			}
			got, err := sched.ScenarioCount(f)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s vs %s: ScenarioCount=%d, reference enumerates %d", mt.Name, f.ID(), got, want)
			}
		}
	}
}

// manyBindingsFault builds a hand-made single-cell fault with six bound
// primitives — more than any taxonomy fault (and more than the fixed-size
// scratch arrays the simulator used to carry). It deliberately bypasses
// Validate: the simulator must size its buffers from the fault, not from an
// assumed maximum.
func manyBindingsFault() linked.Fault {
	fps := []string{
		"<0w1/1/->",   // TF up
		"<1w0/0/->",   // TF down ... kept harmless: F equals the written value
		"<0r0/0/1>",   // IRF-style misread
		"<1r1/1/0>",   // IRF-style misread, other polarity
		"<0w1r1/0/0>", // dynamic write-read pair
		"<1/0/->",     // state fault
	}
	f := linked.Fault{Kind: linked.Simple, Cells: 1}
	for _, s := range fps {
		f.FPs = append(f.FPs, linked.Binding{FP: fp.MustParseFP(s), A: -1, V: 0})
	}
	return f
}

// TestManyBindingsNoPanic is the regression test for the fixed-size
// armed/matched arrays: a fault binding more than four primitives must
// simulate (it used to panic with an index out of range), and the compiled
// path must agree with the reference path on it.
func TestManyBindingsNoPanic(t *testing.T) {
	f := manyBindingsFault()
	cfg := DefaultConfig()
	for _, mt := range []march.Test{march.MATSPlus, march.MarchSL, march.MarchRAW} {
		refDet, refWit, refErr := referenceDetects(mt, f, cfg)
		schedDet, schedWit, schedErr := DetectsFault(mt, f, cfg)
		assertSameOutcome(t, mt.Name+" vs many-bindings fault",
			refDet, schedDet, refWit, schedWit, refErr, schedErr)
	}
}

// TestFullCoverageDeterministic pins the parallel scan's contract: whatever
// Config.Workers is, the reported miss is the one the sequential fault-list
// scan hits first.
func TestFullCoverageDeterministic(t *testing.T) {
	faults := faultlist.List1()
	test := march.MarchSS // misses part of List1, so there is a miss to race for

	seqCfg := DefaultConfig()
	seqCfg.Workers = 1
	full, seqMiss, err := FullCoverage(test, faults, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	if full || seqMiss == nil {
		t.Fatalf("%s unexpectedly covers List1", test.Name)
	}

	for _, workers := range []int{2, 4, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		for rep := 0; rep < 3; rep++ {
			full, miss, err := FullCoverage(test, faults, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if full || miss == nil {
				t.Fatalf("workers=%d rep=%d: got full coverage, want miss", workers, rep)
			}
			if miss.ID() != seqMiss.ID() {
				t.Fatalf("workers=%d rep=%d: missed %s, sequential scan misses %s first",
					workers, rep, miss.ID(), seqMiss.ID())
			}
		}
	}
}

// TestEmptyFaultList pins the aligned empty-list semantics: FullCoverage is
// vacuously true, Simulate returns an empty report, and that report counts
// as Full — the three agree that no fault escapes an empty list.
func TestEmptyFaultList(t *testing.T) {
	cfg := DefaultConfig()
	full, miss, err := FullCoverage(march.MarchSL, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !full || miss != nil {
		t.Fatalf("FullCoverage(empty) = (%v, %v), want (true, nil)", full, miss)
	}
	r := Simulate(march.MarchSL, nil, cfg)
	if r.Total() != 0 || r.Err() != nil {
		t.Fatalf("Simulate(empty) returned %d results, err %v", r.Total(), r.Err())
	}
	if !r.Full() {
		t.Fatal("Simulate(empty).Full() = false, want vacuous true")
	}
}

// TestSimulateMatchesDetectsFault checks the worker fan-out returns the same
// per-fault outcomes as one-at-a-time calls, in fault-list order.
func TestSimulateMatchesDetectsFault(t *testing.T) {
	faults := faultlist.List2()
	cfg := DefaultConfig()
	cfg.Workers = 4
	r := Simulate(march.MarchABL1, faults, cfg)
	if got := r.Total(); got != len(faults) {
		t.Fatalf("Total() = %d, want %d", got, len(faults))
	}
	for i, res := range r.Results {
		if res.Fault.ID() != faults[i].ID() {
			t.Fatalf("result %d is %s, want %s (order must match the list)", i, res.Fault.ID(), faults[i].ID())
		}
		det, wit, err := DetectsFault(march.MarchABL1, faults[i], cfg)
		if err != nil || res.Err != nil {
			t.Fatalf("unexpected error: %v / %v", err, res.Err)
		}
		if det != res.Detected {
			t.Fatalf("fault %s: Simulate says %v, DetectsFault says %v", faults[i].ID(), res.Detected, det)
		}
		if (wit == nil) != (res.Witness == nil) || (wit != nil && wit.String() != res.Witness.String()) {
			t.Fatalf("fault %s: witness mismatch", faults[i].ID())
		}
	}
}
