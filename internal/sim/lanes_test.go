package sim

import (
	"fmt"
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// scalarConfig is the default configuration with the lane engine disabled:
// the comparison baseline for every lanes-vs-scalar test.
func scalarConfig() Config {
	c := DefaultConfig()
	c.DisableLanes = true
	return c
}

// TestLanesMatchScalar compares the two execution modes of the SAME compiled
// schedule head-on: for every library test and every shipped fault, verdict,
// witness and coverage verdict must be identical with lanes on and off.
// (TestScheduleMatchesReference separately pins both modes against the
// uncompiled reference path.)
func TestLanesMatchScalar(t *testing.T) {
	faults := append(faultlist.List2(), faultlist.SimpleStatic()...)
	faults = append(faults, faultlist.Dynamic()...)
	if !testing.Short() {
		faults = append(faults, faultlist.List1()...)
	}
	for _, cfg := range []Config{DefaultConfig(), {Size: 5, ExhaustiveOrders: true}, {Size: 4}} {
		scalar := cfg
		scalar.DisableLanes = true
		for _, mt := range march.Lib() {
			laneSched, err := NewSchedule(mt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			scalSched, err := NewSchedule(mt, scalar)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range faults {
				lDet, lWit, lErr := laneSched.DetectsFault(f)
				sDet, sWit, sErr := scalSched.DetectsFault(f)
				assertSameOutcome(t, fmt.Sprintf("size=%d %s vs %s", cfg.size(), mt.Name, f.ID()),
					sDet, lDet, sWit, lWit, sErr, lErr)
				lm := laneSched.getMachine()
				lMiss, lmErr := laneSched.missesFault(lm, f)
				laneSched.putMachine(lm)
				sm := scalSched.getMachine()
				sMiss, smErr := scalSched.missesFault(sm, f)
				scalSched.putMachine(sm)
				if (lmErr != nil) != (smErr != nil) || lMiss != sMiss {
					t.Fatalf("%s vs %s: missesFault lanes=(%v,%v) scalar=(%v,%v)",
						mt.Name, f.ID(), lMiss, lmErr, sMiss, smErr)
				}
			}
		}
	}
}

// TestLaneEligibility pins the fallback taxonomy: which faults the planner
// accepts onto the bit-parallel path and which it sends back to the scalar
// engine.
func TestLaneEligibility(t *testing.T) {
	sched, err := NewSchedule(march.MarchSL, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := sched.getMachine()
	defer sched.putMachine(m)

	eligible := func(f linked.Fault) bool { return sched.planLanes(m, f) }

	// Every shipped static fault — simple, linked, state-triggered — must
	// ride the lanes; every dynamic one must not.
	for _, f := range append(faultlist.List1(), faultlist.SimpleStatic()...) {
		if anyDynamic(f) {
			continue
		}
		if !eligible(f) {
			t.Errorf("static fault %s not lane-eligible", f.ID())
		}
	}
	for _, f := range faultlist.Dynamic() {
		if eligible(f) {
			t.Errorf("dynamic fault %s must fall back to scalar", f.ID())
		}
	}

	// Data retention (wait-sensitized) primitives are time-based: scalar.
	drf := linked.Fault{Kind: linked.Simple, Cells: 1, FPs: []linked.Binding{
		{FP: fp.MustParseFP("<1t/0/->"), A: -1, V: 0},
	}}
	if eligible(drf) {
		t.Error("DRF must fall back to scalar")
	}

	// Too many cells for the 64-bit packing: scalar (here: uncached too).
	big := fourCellFault()
	if eligible(big) {
		t.Error("4-cell fault must fall back to scalar")
	}

	// The escape hatch forces scalar for everything.
	off, err := NewSchedule(march.MarchSL, scalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	mOff := off.getMachine()
	defer off.putMachine(mOff)
	for _, f := range faultlist.List2() {
		if off.planLanes(mOff, f) {
			t.Fatalf("DisableLanes must force scalar, accepted %s", f.ID())
		}
	}
}

// TestOutOfRangeBindingError is the regression test for the binding-index
// audit: a hand-built fault whose aggressor index lies outside the cell set
// used to panic inside bindFault (placement[b.A] with b.A == Cells); it must
// now surface as an error from every entry point, lanes on or off.
func TestOutOfRangeBindingError(t *testing.T) {
	bad := []linked.Fault{
		{Kind: linked.Simple, Cells: 2, FPs: []linked.Binding{
			{FP: fp.MustParseFP("<0;0w1/0/->"), A: 2, V: 0}, // aggressor out of range
		}},
		{Kind: linked.Simple, Cells: 2, FPs: []linked.Binding{
			{FP: fp.MustParseFP("<0w1/0/->"), A: -1, V: 2}, // victim out of range
		}},
		{Kind: linked.Simple, Cells: 1, FPs: []linked.Binding{
			{FP: fp.MustParseFP("<0w1/0/->"), A: -2, V: 0}, // aggressor below -1
		}},
	}
	for _, cfg := range []Config{DefaultConfig(), scalarConfig()} {
		for i, f := range bad {
			det, wit, err := DetectsFault(march.MarchSL, f, cfg)
			if err == nil {
				t.Fatalf("fault %d (lanes=%v): DetectsFault = (%v, %v, nil), want error",
					i, !cfg.DisableLanes, det, wit)
			}
			full, _, err := FullCoverage(march.MarchSL, []linked.Fault{f}, cfg)
			if err == nil {
				t.Fatalf("fault %d (lanes=%v): FullCoverage = (%v, nil), want error",
					i, !cfg.DisableLanes, full)
			}
		}
	}
}

// TestNoAggressorStateConditionInert pins the settleCtx/waitCtx guard: a
// hand-built two-cell primitive bound without an aggressor but carrying a
// binary aggressor condition can never be sensitized (the reference matchers
// compare the condition against VX). The compiled paths must agree with the
// reference instead of indexing faulty[-1].
func TestNoAggressorStateConditionInert(t *testing.T) {
	faults := []linked.Fault{
		// State-triggered (exercises the settleCtx guard).
		{Kind: linked.Simple, Cells: 2, FPs: []linked.Binding{
			{FP: fp.MustParseFP("<1;0/1/->"), A: -1, V: 0},
		}},
		// Wait-sensitized (exercises the waitCtx guard; March RAW has no t
		// ops, so pair it with a test that would run waitCtx if any did).
		{Kind: linked.Simple, Cells: 2, FPs: []linked.Binding{
			{FP: fp.MustParseFP("<1;0t/1/->"), A: -1, V: 0},
		}},
		// Op-triggered, for completeness of the inert-binding handling.
		{Kind: linked.Simple, Cells: 2, FPs: []linked.Binding{
			{FP: fp.MustParseFP("<1;0w1/0/->"), A: -1, V: 0},
		}},
	}
	for _, cfg := range []Config{DefaultConfig(), scalarConfig()} {
		for _, mt := range []march.Test{march.MATSPlus, march.MarchSL} {
			for _, f := range faults {
				refDet, refWit, refErr := referenceDetects(mt, f, cfg)
				schedDet, schedWit, schedErr := DetectsFault(mt, f, cfg)
				assertSameOutcome(t, fmt.Sprintf("%s vs inert %s (lanes=%v)",
					mt.Name, f.ID(), !cfg.DisableLanes),
					refDet, schedDet, refWit, schedWit, refErr, schedErr)
			}
		}
	}
}

// placementClassReference is the old O(size·k) implementation: scan every
// memory address in ascending order and append the digit of the cell placed
// there. The property test pins the new sort-based rank against it.
func placementClassReference(placement []int, size int) int {
	key := 0
	for a := 0; a < size; a++ {
		for c, pa := range placement {
			if pa == a {
				key = key*classKeyBase + c + 1
			}
		}
	}
	return key
}

// TestPlacementClassProperty exhaustively compares the new placement rank
// against the old scan over every placement of 1..3 cells at several memory
// sizes, and checks the classSpace bound it feeds.
func TestPlacementClassProperty(t *testing.T) {
	for _, size := range []int{4, 5, 8, 11} {
		cfg := Config{Size: size, ExhaustiveOrders: true}
		sched, err := NewSchedule(march.MATSPlus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= maxClassCells; k++ {
			seen := map[int]bool{}
			err := sched.forEachPlacement(k, func(placement []int) bool {
				got := placementClass(placement)
				want := placementClassReference(placement, size)
				if got != want {
					t.Fatalf("size=%d placement=%v: placementClass=%d, reference=%d",
						size, placement, got, want)
				}
				if got < 0 || got >= classSpace {
					t.Fatalf("size=%d placement=%v: rank %d outside [0,%d)",
						size, placement, got, classSpace)
				}
				seen[got] = true
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			// Exactly k! distinct relative orders must appear.
			want := 1
			for i := 2; i <= k; i++ {
				want *= i
			}
			if len(seen) != want {
				t.Fatalf("size=%d k=%d: %d distinct ranks, want %d", size, k, len(seen), want)
			}
		}
	}
}

// fourCellFault builds a hand-built static fault spanning four cells — one
// more than the class memoization (and the lane packing) supports. Two
// disturb couplings from distinct aggressors share a victim, plus a fourth
// bound cell that only the placement enumeration sees.
func fourCellFault() linked.Fault {
	return linked.Fault{Kind: linked.LF3, Cells: 4, FPs: []linked.Binding{
		{FP: fp.MustParseFP("<0w1;0/1/->"), A: 0, V: 2},
		{FP: fp.MustParseFP("<0w1;1/0/->"), A: 1, V: 2},
		{FP: fp.MustParseFP("<1;0/1/->"), A: 3, V: 2},
	}}
}

// TestFourCellFaultUncached is the boundary test for the class-table bound:
// a 4-cell static fault must degrade to the uncached per-placement path (its
// ranks would not fit classSpace) and still agree with the reference
// enumeration — instead of silently corrupting the memoization like an
// unchecked 64-entry array would.
func TestFourCellFaultUncached(t *testing.T) {
	f := fourCellFault()
	if canClassCache(f) {
		t.Fatalf("canClassCache accepted a %d-cell fault (maxClassCells=%d)", f.Cells, maxClassCells)
	}
	for _, cfg := range []Config{
		{Size: 5, ExhaustiveOrders: true},
		{Size: 6, ExhaustiveOrders: true, DisableLanes: true},
	} {
		for _, mt := range []march.Test{march.MATSPlus, march.MarchLF1} {
			refDet, refWit, refErr := referenceDetects(mt, f, cfg)
			schedDet, schedWit, schedErr := DetectsFault(mt, f, cfg)
			assertSameOutcome(t, fmt.Sprintf("%s vs 4-cell fault (size=%d)", mt.Name, cfg.Size),
				refDet, schedDet, refWit, schedWit, refErr, schedErr)
		}
	}
}

// fuzzTests is the pool the fuzzer draws march tests from: a spread of
// element shapes (⇑/⇓/⇕, reads, writes, waits, back-to-back pairs).
var fuzzTests = []march.Test{
	march.MATSPlus,
	march.MarchCMinus,
	march.MarchSL,
	march.MarchRAW,
	march.MarchLF1,
	march.MarchSS,
}

// fuzzValue decodes 0/1/- from the low bits of a fuzz byte.
func fuzzValue(b byte) fp.Value {
	switch b % 3 {
	case 0:
		return fp.V0
	case 1:
		return fp.V1
	}
	return fp.VX
}

// fuzzFault decodes a hand-built fault from fuzz bytes. It deliberately
// produces the whole zoo the planner must classify — state, op and wait
// triggers, dynamic pairs, inert no-aggressor bindings, F == VInit no-ops —
// while keeping cell indices in range (out-of-range indices error before
// simulation and are covered by TestOutOfRangeBindingError).
func fuzzFault(data []byte) linked.Fault {
	if len(data) < 2 {
		data = append(data, 0, 0)
	}
	cells := int(data[0])%3 + 1
	nb := int(data[1])%2 + 1
	f := linked.Fault{Kind: linked.Simple, Cells: cells}
	data = data[2:]
	for i := 0; i < nb; i++ {
		var chunk [8]byte
		copy(chunk[:], data)
		if len(data) > 8 {
			data = data[8:]
		}
		b := linked.Binding{V: int(chunk[0]) % cells, A: -1}
		if cells > 1 && chunk[1]%2 == 0 {
			b.A = int(chunk[1]/2) % cells
			if b.A == b.V {
				b.A = (b.A + 1) % cells
			}
		}
		pf := fp.FP{Cells: 1, F: fp.ValueOf(chunk[2] % 2)}
		if b.A >= 0 || chunk[2]%4 >= 2 {
			pf.Cells = 2
			pf.AInit = fuzzValue(chunk[3])
		}
		pf.VInit = fuzzValue(chunk[4])
		switch chunk[5] % 4 {
		case 0: // state-triggered
			pf.Trigger = fp.TrigState
		case 1: // wait-sensitized
			pf.Trigger = fp.TrigOp
			pf.OpRole = fp.RoleVictim
			pf.Op = fp.Wait
		default: // op-triggered, possibly dynamic
			pf.Trigger = fp.TrigOp
			pf.OpRole = fp.RoleVictim
			if b.A >= 0 && chunk[6]%2 == 0 {
				pf.OpRole = fp.RoleAggressor
			}
			ops := []fp.Op{fp.W0, fp.W1, fp.R0, fp.R1, fp.RX}
			pf.Op = ops[int(chunk[6]/2)%len(ops)]
			if chunk[5]%4 == 3 { // dynamic: a second back-to-back operation
				pf.Op2 = ops[int(chunk[7])%len(ops)]
			}
			last := pf.Op
			if !pf.Op2.IsZero() {
				last = pf.Op2
			}
			if last.Kind == fp.OpRead && pf.OpRole == fp.RoleVictim {
				pf.R = fp.ValueOf(chunk[7] % 2)
			}
		}
		f.FPs = append(f.FPs, linked.Binding{FP: pf, A: b.A, V: b.V})
	}
	return f
}

// FuzzLanesVsScalar is the differential fuzz target of the lane engine:
// whatever fault the bytes decode into — eligible or fallback — the
// lane-enabled schedule must return exactly the scalar schedule's verdict
// and witness, for a random march test, size and order mode.
func FuzzLanesVsScalar(f *testing.F) {
	f.Add([]byte{0, 0}, uint8(0))
	f.Add([]byte{2, 1, 1, 2, 1, 0, 0, 4, 1, 0}, uint8(1))
	f.Add([]byte{1, 1, 0, 0, 1, 2, 0, 3, 5, 0}, uint8(7))
	f.Add([]byte{2, 0, 0, 2, 1, 1, 2, 5, 4, 3, 2, 1, 0, 6, 7, 8, 9, 1}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, pick uint8) {
		fault := fuzzFault(data)
		mt := fuzzTests[int(pick)%len(fuzzTests)]
		cfg := Config{
			Size:             4 + int(pick/16)%2,
			ExhaustiveOrders: pick/8%2 == 0,
		}
		scalar := cfg
		scalar.DisableLanes = true
		lDet, lWit, lErr := DetectsFault(mt, fault, cfg)
		sDet, sWit, sErr := DetectsFault(mt, fault, scalar)
		if (lErr != nil) != (sErr != nil) {
			t.Fatalf("%s vs %s: lanes err=%v scalar err=%v", mt.Name, fault.ID(), lErr, sErr)
		}
		if lErr != nil {
			return
		}
		if lDet != sDet {
			t.Fatalf("%s vs %s: lanes detected=%v scalar detected=%v", mt.Name, fault.ID(), lDet, sDet)
		}
		if (lWit == nil) != (sWit == nil) || (lWit != nil && lWit.String() != sWit.String()) {
			t.Fatalf("%s vs %s: witness lanes=%v scalar=%v", mt.Name, fault.ID(), lWit, sWit)
		}
		lFull, lMiss, _ := FullCoverage(mt, []linked.Fault{fault}, cfg)
		sFull, sMiss, _ := FullCoverage(mt, []linked.Fault{fault}, scalar)
		if lFull != sFull || (lMiss == nil) != (sMiss == nil) {
			t.Fatalf("%s vs %s: FullCoverage lanes=(%v,%v) scalar=(%v,%v)",
				mt.Name, fault.ID(), lFull, lMiss, sFull, sMiss)
		}
	})
}
