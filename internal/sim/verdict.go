package sim

import "fmt"

// Verdict is the comparable outcome of simulating one fault: the flattened,
// implementation-neutral form of a Result. It exists so an independent
// simulator (internal/oracle) can be diffed against this one field by field
// — fault identity, detection verdict, witness trace — without sharing any
// simulation code.
type Verdict struct {
	// Fault is the stable fault identifier (linked.Fault.ID).
	Fault string
	// Detected reports detection in every scenario.
	Detected bool
	// Witness renders the first undetected scenario ("" when detected or
	// when the simulation errored).
	Witness string
	// Err is the simulation error text ("" on success). Two
	// implementations word their errors differently, so DiffVerdicts
	// compares error presence, not text.
	Err string
}

// Verdict flattens a Result.
func (r Result) Verdict() Verdict {
	v := Verdict{Fault: r.Fault.ID(), Detected: r.Detected}
	if r.Err != nil {
		v.Err = r.Err.Error()
		return v
	}
	if !r.Detected && r.Witness != nil {
		v.Witness = r.Witness.String()
	}
	return v
}

// Verdicts flattens a report into one Verdict per fault, in fault-list
// order.
func (r Report) Verdicts() []Verdict {
	out := make([]Verdict, len(r.Results))
	for i, res := range r.Results {
		out[i] = res.Verdict()
	}
	return out
}

// VerdictDiff is one divergence between two verdict sets.
type VerdictDiff struct {
	// Fault is the fault the implementations disagree on ("" for a
	// set-level mismatch such as differing lengths).
	Fault string `json:"fault,omitempty"`
	// Field names what diverged: "count", "fault", "error", "detected" or
	// "witness".
	Field string `json:"field"`
	// A and B are the two sides' values for the diverged field.
	A string `json:"a"`
	B string `json:"b"`
}

// String renders "fault: field A != B".
func (d VerdictDiff) String() string {
	if d.Fault == "" {
		return fmt.Sprintf("%s: %q != %q", d.Field, d.A, d.B)
	}
	return fmt.Sprintf("%s: %s %q != %q", d.Fault, d.Field, d.A, d.B)
}

// DiffVerdicts compares two verdict sets position by position and returns
// every divergence: mismatched fault identity, one side erroring where the
// other did not, differing detection verdicts, or — for faults both sides
// missed — differing witness traces. Both sides erroring counts as
// agreement (the error texts are implementation-specific). An empty result
// means the two simulators agree on the entire fault list.
func DiffVerdicts(a, b []Verdict) []VerdictDiff {
	if len(a) != len(b) {
		return []VerdictDiff{{Field: "count", A: fmt.Sprintf("%d verdicts", len(a)), B: fmt.Sprintf("%d verdicts", len(b))}}
	}
	var out []VerdictDiff
	for i := range a {
		x, y := a[i], b[i]
		if x.Fault != y.Fault {
			out = append(out, VerdictDiff{Fault: x.Fault, Field: "fault", A: x.Fault, B: y.Fault})
			continue
		}
		if (x.Err != "") != (y.Err != "") {
			out = append(out, VerdictDiff{Fault: x.Fault, Field: "error", A: x.Err, B: y.Err})
			continue
		}
		if x.Err != "" {
			continue // both errored: agreement
		}
		if x.Detected != y.Detected {
			out = append(out, VerdictDiff{Fault: x.Fault, Field: "detected", A: fmt.Sprintf("%t", x.Detected), B: fmt.Sprintf("%t", y.Detected)})
			continue
		}
		if !x.Detected && x.Witness != y.Witness {
			out = append(out, VerdictDiff{Fault: x.Fault, Field: "witness", A: x.Witness, B: y.Witness})
		}
	}
	return out
}
