package sim

import (
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// These tests pin the simulator against published coverage claims and record
// the measured coverage of every test the paper compares (EXPERIMENTS.md
// discusses each number). They are the core validation of the reproduction:
// if any of them breaks, either the fault lists or the simulator semantics
// changed.

// March SS is published as detecting all simple static single- and two-cell
// faults (Hamdioui et al., VTS 2002).
func TestMarchSSCoversSimpleStatic(t *testing.T) {
	r := Simulate(march.MarchSS, faultlist.SimpleStatic(), DefaultConfig())
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !r.Full() {
		for _, m := range r.Missed() {
			t.Errorf("March SS misses %s (witness %v)", m.Fault.ID(), m.Witness)
		}
	}
}

// March SL is published as detecting all static linked faults (Hamdioui et
// al., ATS 2003 / TCAD 2004, the paper's references [9][10]). It achieves
// full coverage on our complete Definition-6 enumeration — the strongest
// cross-validation of fault lists and simulator in this reproduction.
func TestMarchSLCoversList1(t *testing.T) {
	r := Simulate(march.MarchSL, faultlist.List1(), DefaultConfig())
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !r.Full() {
		for _, m := range r.Missed() {
			t.Errorf("March SL misses %s (witness %v)", m.Fault.ID(), m.Witness)
		}
	}
}

func TestMarchSLCoversList2AndSimple(t *testing.T) {
	if r := Simulate(march.MarchSL, faultlist.List2(), DefaultConfig()); !r.Full() {
		t.Errorf("March SL on List #2: %s", r.Summary())
	}
	if r := Simulate(march.MarchSL, faultlist.SimpleStatic(), DefaultConfig()); !r.Full() {
		t.Errorf("March SL on simple static faults: %s", r.Summary())
	}
}

// March ABL1 (the paper's generated 9n test) covers the whole of Fault
// List #2, as the paper claims.
func TestMarchABL1CoversList2(t *testing.T) {
	r := Simulate(march.MarchABL1, faultlist.List2(), DefaultConfig())
	if !r.Full() {
		for _, m := range r.Missed() {
			t.Errorf("March ABL1 misses %s (witness %v)", m.Fault.ID(), m.Witness)
		}
	}
}

// The published March ABL and RABL sequences cover most but not all of our
// Definition-6 List #1 (588/594 and 563/594). The DATE 2006 paper validated
// them against the realistic-fault tables of its reference [10], which are
// not reprinted and are evidently a subset of the full Definition-6 space.
// The exact numbers are pinned here as a documented reproduction finding;
// see EXPERIMENTS.md.
func TestPublishedABLCoverageOnExtendedList(t *testing.T) {
	list1 := faultlist.List1()
	rABL := Simulate(march.MarchABL, list1, DefaultConfig())
	if got := rABL.Detected(); got != 588 {
		t.Errorf("March ABL on List #1: %d/594 detected, previously measured 588", got)
	}
	rRABL := Simulate(march.MarchRABL, list1, DefaultConfig())
	if got := rRABL.Detected(); got != 563 {
		t.Errorf("March RABL on List #1: %d/594 detected, previously measured 563", got)
	}
	// Everything ABL or RABL misses is an LF2aa/LF3 coupling pair that
	// March SL detects, i.e. the misses are detectable faults outside the
	// paper's (smaller) list, not simulator artifacts.
	for _, m := range append(rABL.Missed(), rRABL.Missed()...) {
		if m.Fault.Kind != linked.LF3 && m.Fault.Kind != linked.LF2aa {
			t.Errorf("unexpected miss kind %v for %s", m.Fault.Kind, m.Fault.ID())
		}
		det, _, err := DetectsFault(march.MarchSL, m.Fault, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !det {
			t.Errorf("%s missed by ABL/RABL and by March SL", m.Fault.ID())
		}
	}
}

// Our reconstructed March LF1 covers 17 of the 18 Definition-6 single-cell
// linked faults and all 6 truly-masking ("realistic") ones. The single miss
// is TF<0w1/0/-> -> DRDF<0r0/1/0>, where the deceptive read pre-empts the
// transition fault; it is pinned as a property of the reconstruction.
func TestMarchLF1Coverage(t *testing.T) {
	full := Simulate(march.MarchLF1, faultlist.List2(), DefaultConfig())
	if got := full.Detected(); got != 17 {
		t.Errorf("March LF1 on List #2: %d/18, previously measured 17", got)
	}
	missed := full.Missed()
	if len(missed) == 1 {
		want := "LF1{TF<0w1/0/->(v0) -> DRDF<0r0/1/0>(v0)}"
		if missed[0].Fault.ID() != want {
			t.Errorf("March LF1 miss = %s, want %s", missed[0].Fault.ID(), want)
		}
	}
	realistic := Simulate(march.MarchLF1, faultlist.Realistic(faultlist.List2()), DefaultConfig())
	if !realistic.Full() {
		t.Errorf("March LF1 on realistic List #2: %s", realistic.Summary())
	}
}

// Classic march tests must not reach full coverage on the linked lists —
// that is the paper's motivation. Pin the measured coverages as regression
// anchors (documented in EXPERIMENTS.md).
func TestClassicCoverageAnchors(t *testing.T) {
	list1 := faultlist.List1()
	anchors := []struct {
		test march.Test
		want int
	}{
		{march.MATSPlus, 48},
		{march.MarchX, 79},
		{march.MarchY, 128},
		{march.MarchCMinus, 420},
		{march.MarchA, 299},
		{march.MarchB, 310},
		{march.MarchU, 428},
		{march.MarchLR, 452},
		{march.MarchLA, 528},
		{march.MarchSS, 552},
	}
	for _, a := range anchors {
		r := Simulate(a.test, list1, DefaultConfig())
		if got := r.Detected(); got != a.want {
			t.Errorf("%s on List #1: %d/594, previously measured %d", a.test.Name, got, a.want)
		}
		if r.Full() {
			t.Errorf("%s must not fully cover the linked fault list", a.test.Name)
		}
	}
}
