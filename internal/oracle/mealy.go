package oracle

import (
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// automaton is the explicit Mealy machine of one fault under one placement.
//
// State space: the 2^n possible memory contents (one bit per cell — every
// reachable cell value is binary: cells start at a binary value and writes
// and fault effects store binary values) crossed with the arming status of
// each dynamic fault-primitive binding (disarmed, or armed on one of the n
// addresses). Input alphabet: {w0, w1, r} applied to each address, plus the
// global wait 't'. Output alphabet: the value a read returns (reads are the
// only observing inputs).
//
// The transition function delta is computed directly from the fault
// primitive definitions (Definition 3 of the paper) for one (state, input)
// pair at a time and memoized per placement — a plain function table, not a
// compiled schedule: no op-stream sharing, no good-trace annotations, no
// placement equivalence. The fault-free machine is not part of this
// automaton; run simulates it explicitly alongside (it is the trivial
// memory automaton: writes store, reads return, wait does nothing).
type automaton struct {
	size int
	f    linked.Fault
	// dynIdx lists the positions of the dynamic (two-operation) bindings in
	// f.FPs; only those carry arming status in the automaton state.
	dynIdx    []int
	placement []int

	// memStates = 2^size; armRadix = size+1 (disarmed, or armed on one of
	// the size addresses); stateCount = memStates * armRadix^len(dynIdx).
	memStates  int
	armRadix   int
	stateCount int
	inputCount int

	// table memoizes delta per (state, input); tableGen marks which entries
	// belong to the current placement (bumping gen invalidates them all
	// without clearing). A dense table is used when the state space is
	// small enough, otherwise the sparse map.
	table    []trans
	tableGen []uint32
	gen      uint32
	sparse   map[int64]trans

	// scratch buffers of the transition computation.
	cells     []fp.Value
	armed     []int // per binding: 0 = disarmed, 1+addr = armed on addr
	nextArmed []int
	matched   []bool
}

// trans is one memoized transition: successor state and, for read inputs,
// the value the faulty machine returns (-1 for non-observing inputs).
type trans struct {
	next int
	out  int8
}

// denseTableLimit bounds the dense memo allocation (entries); larger state
// spaces fall back to the sparse map.
const denseTableLimit = 1 << 22

func newAutomaton(f linked.Fault, size int) *automaton {
	a := &automaton{
		size:       size,
		f:          f,
		memStates:  1 << size,
		armRadix:   size + 1,
		inputCount: 1 + 3*size, // wait + {w0,w1,r} per address
		cells:      make([]fp.Value, size),
		armed:      make([]int, len(f.FPs)),
		nextArmed:  make([]int, len(f.FPs)),
		matched:    make([]bool, len(f.FPs)),
	}
	for i, b := range f.FPs {
		if b.FP.IsDynamic() {
			a.dynIdx = append(a.dynIdx, i)
		}
	}
	a.stateCount = a.memStates
	for range a.dynIdx {
		a.stateCount *= a.armRadix
	}
	if n := a.stateCount * a.inputCount; n <= denseTableLimit {
		a.table = make([]trans, n)
		a.tableGen = make([]uint32, n)
	} else {
		a.sparse = make(map[int64]trans)
	}
	return a
}

// setPlacement rebinds the automaton to a placement of the fault cells and
// invalidates the transition memo.
func (a *automaton) setPlacement(placement []int) {
	a.placement = placement
	a.gen++
	if a.sparse != nil && len(a.sparse) > 0 {
		a.sparse = make(map[int64]trans)
	}
}

// input indices: 0 is the wait; operation k on address addr is
// 1 + addr*3 + k with k = 0 (w0), 1 (w1), 2 (read).
const (
	inWait   = 0
	inWrite0 = 0
	inWrite1 = 1
	inRead   = 2
)

func inputIndex(addr int, op fp.Op) int {
	switch op.Kind {
	case fp.OpWait:
		return inWait
	case fp.OpWrite:
		if op.Data == fp.V1 {
			return 1 + addr*3 + inWrite1
		}
		return 1 + addr*3 + inWrite0
	default: // fp.OpRead; the expected value is not part of the input:
		// trigger matching is on cell state, detection on the fault-free
		// machine's value.
		return 1 + addr*3 + inRead
	}
}

// run replays the full operation stream of the test under the given
// concrete element orders, starting from the given memory contents (placed
// cells initialized, bystanders zero), and reports whether any read
// detects the fault. The fault-free machine is simulated explicitly as a
// bit vector alongside the automaton walk.
func (a *automaton) run(t march.Test, orders []march.AddrOrder, initWord uint32) bool {
	state := a.settleInitial(int(initWord))
	good := initWord
	for ei, e := range t.Elems {
		// The concrete traversal: ⇑ ascending, ⇓ descending. Orders are
		// already resolved by expandOrders, so ⇕ cannot appear here.
		start, stop, step := 0, a.size, 1
		if orders[ei] == march.Down {
			start, stop, step = a.size-1, -1, -1
		}
		for addr := start; addr != stop; addr += step {
			for _, op := range e.Ops {
				in := inputIndex(addr, op)
				tr := a.delta(state, in)
				state = tr.next
				switch op.Kind {
				case fp.OpWrite:
					if op.Data == fp.V1 {
						good |= 1 << addr
					} else {
						good &^= 1 << addr
					}
				case fp.OpRead:
					if tr.out != int8(good>>addr&1) {
						// Detection anywhere suffices.
						return true
					}
				}
			}
		}
	}
	return false
}

// settleInitial applies the state-triggered primitives to the power-up
// contents before the first operation (the paper's state faults hold from
// the moment the condition holds) and returns the initial automaton state,
// with every dynamic binding disarmed.
func (a *automaton) settleInitial(memWord int) int {
	a.decodeMem(memWord)
	for i := range a.armed {
		a.armed[i] = 0
	}
	a.settleStateFaults()
	return a.encode()
}

// delta returns the memoized transition for (state, input), computing it
// from the fault-primitive definitions on first use.
func (a *automaton) delta(state, in int) trans {
	if a.table != nil {
		idx := state*a.inputCount + in
		if a.tableGen[idx] == a.gen {
			return a.table[idx]
		}
		tr := a.compute(state, in)
		a.table[idx] = tr
		a.tableGen[idx] = a.gen
		return tr
	}
	key := int64(state)*int64(a.inputCount) + int64(in)
	if tr, ok := a.sparse[key]; ok {
		return tr
	}
	tr := a.compute(state, in)
	a.sparse[key] = tr
	return tr
}

// compute evaluates one Mealy transition: decode the state, apply the
// operation with its fault-primitive semantics, re-encode.
//
// The per-step semantics are the paper's (and, by construction, the
// contract internal/sim implements — the equivalence tests pin this):
//
//  1. wait sensitizes data-retention primitives on every matching cell,
//     breaks armed back-to-back sequences, and lets state faults settle;
//  2. any other operation first evaluates the operation triggers against
//     the pre-operation faulty state (dynamic primitives fire if armed on
//     this address by the immediately preceding operation, and (re-)arm if
//     the operation matches their first sensitizing operation), then
//  3. applies the base memory semantics,
//  4. applies the fault effects of the matched bindings in binding order
//     (FP1 before FP2, so linked masking plays out deterministically), a
//     read on a victim returning the primitive's R value when specified,
//  5. and finally lets state-triggered primitives settle to a fixpoint.
func (a *automaton) compute(state, in int) trans {
	a.decode(state)

	if in == inWait {
		for _, b := range a.f.FPs {
			p := b.FP
			if p.Trigger != fp.TrigOp || p.Op.Kind != fp.OpWait || p.IsDynamic() {
				continue
			}
			if p.OpRole != fp.RoleVictim {
				continue
			}
			aState, vState := a.bindingStates(b)
			if !matchInitStates(p, aState, vState) {
				continue
			}
			a.cells[a.placement[b.V]] = p.F
		}
		a.settleStateFaults()
		for i := range a.armed {
			a.armed[i] = 0 // a wait breaks back-to-back sequences
		}
		return trans{next: a.encode(), out: -1}
	}

	addr := (in - 1) / 3
	opk := (in - 1) % 3
	isRead := opk == inRead

	// 1. Operation triggers against the pre-operation faulty state.
	for i := range a.matched {
		a.matched[i] = false
		a.nextArmed[i] = 0
	}
	for i, b := range a.f.FPs {
		p := b.FP
		if p.Trigger != fp.TrigOp {
			continue
		}
		var role fp.Role
		switch {
		case a.placement[b.V] == addr:
			role = fp.RoleVictim
		case b.A >= 0 && a.placement[b.A] == addr:
			role = fp.RoleAggressor
		default:
			continue
		}
		aState, vState := a.bindingStates(b)
		if p.IsDynamic() {
			if a.armed[i] == 1+addr && matchOpShape(p.Op2, p.OpRole, role, opk) {
				a.matched[i] = true
			} else if matchOpShape(p.Op, p.OpRole, role, opk) && matchInitStates(p, aState, vState) {
				a.nextArmed[i] = 1 + addr
			}
			continue
		}
		if matchOpShape(p.Op, p.OpRole, role, opk) && matchInitStates(p, aState, vState) {
			a.matched[i] = true
		}
	}

	// 2. Base memory semantics of the faulty machine.
	out := int8(-1)
	switch opk {
	case inWrite0:
		a.cells[addr] = fp.V0
	case inWrite1:
		a.cells[addr] = fp.V1
	case inRead:
		out = int8(a.cells[addr].Bit())
	}

	// 3. Fault effects, in binding order.
	for i, b := range a.f.FPs {
		if !a.matched[i] {
			continue
		}
		a.cells[a.placement[b.V]] = b.FP.F
		if isRead && a.placement[b.V] == addr && b.FP.OpRole == fp.RoleVictim && b.FP.R.IsBinary() {
			out = int8(b.FP.R.Bit())
		}
	}

	// 4. State faults settle on the new contents.
	a.settleStateFaults()

	// Whatever this operation did not (re-)arm is disarmed: back-to-back
	// means consecutive in the operation stream.
	a.armed, a.nextArmed = a.nextArmed, a.armed

	return trans{next: a.encode(), out: out}
}

// settleStateFaults applies state-triggered primitives (SF, CFst) to the
// scratch cells until a fixpoint, bounded to len(FPs)+1 passes so mutually
// linked state conditions cannot oscillate forever.
func (a *automaton) settleStateFaults() {
	for iter := 0; iter <= len(a.f.FPs); iter++ {
		progress := false
		for _, b := range a.f.FPs {
			p := b.FP
			if p.Trigger != fp.TrigState {
				continue
			}
			aState, vState := a.bindingStates(b)
			if p.Cells == 2 && p.AInit.IsBinary() && aState != p.AInit {
				continue
			}
			if !p.VInit.IsBinary() || vState != p.VInit {
				continue
			}
			if a.cells[a.placement[b.V]] != p.F {
				a.cells[a.placement[b.V]] = p.F
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// bindingStates returns the faulty states of a binding's aggressor and
// victim cells (aggressor VX when the binding has none).
func (a *automaton) bindingStates(b linked.Binding) (aState, vState fp.Value) {
	aState = fp.VX
	if b.A >= 0 {
		aState = a.cells[a.placement[b.A]]
	}
	return aState, a.cells[a.placement[b.V]]
}

// matchOpShape reports whether an input operation of kind opk applied to a
// cell with the given role matches a primitive's sensitizing operation
// shape: same role, same kind, and for writes the same data. Reads match
// regardless of the primitive's recorded expected value — that value
// documents the fault-free cell content, it is not a trigger condition.
func matchOpShape(sens fp.Op, sensRole, role fp.Role, opk int) bool {
	if role != sensRole {
		return false
	}
	switch sens.Kind {
	case fp.OpWrite:
		return (opk == inWrite0 && sens.Data == fp.V0) || (opk == inWrite1 && sens.Data == fp.V1)
	case fp.OpRead:
		return opk == inRead
	default:
		return false
	}
}

// matchInitStates reports whether the pre-operation cell states satisfy a
// primitive's initial conditions (binary conditions constrain, VX does not).
func matchInitStates(p fp.FP, aState, vState fp.Value) bool {
	if p.Cells == 2 && p.AInit.IsBinary() && aState != p.AInit {
		return false
	}
	if p.VInit.IsBinary() && vState != p.VInit {
		return false
	}
	return true
}

// decode expands an automaton state into the scratch cells and armed
// buffers.
func (a *automaton) decode(state int) {
	a.decodeMem(state % a.memStates)
	code := state / a.memStates
	for i := range a.armed {
		a.armed[i] = 0
	}
	for _, i := range a.dynIdx {
		a.armed[i] = code % a.armRadix
		code /= a.armRadix
	}
}

func (a *automaton) decodeMem(memWord int) {
	for c := 0; c < a.size; c++ {
		a.cells[c] = fp.ValueOf(uint8(memWord >> c & 1))
	}
}

// encode packs the scratch cells and armed buffers into an automaton state.
func (a *automaton) encode() int {
	word := 0
	for c := 0; c < a.size; c++ {
		if a.cells[c] == fp.V1 {
			word |= 1 << c
		}
	}
	code := 0
	for j := len(a.dynIdx) - 1; j >= 0; j-- {
		code = code*a.armRadix + a.armed[a.dynIdx[j]]
	}
	return word + a.memStates*code
}
