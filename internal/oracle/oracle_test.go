package oracle

import (
	"strings"
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

func mustSimple(t *testing.T, spec string) linked.Fault {
	t.Helper()
	p, err := fp.ParseFP(spec)
	if err != nil {
		t.Fatalf("fp.ParseFP(%q): %v", spec, err)
	}
	f, err := linked.NewSimple(p)
	if err != nil {
		t.Fatalf("NewSimple(%q): %v", spec, err)
	}
	return f
}

func mustParse(t *testing.T, name, spec string) march.Test {
	t.Helper()
	mt, err := march.Parse(name, spec)
	if err != nil {
		t.Fatalf("march.Parse(%q): %v", spec, err)
	}
	return mt
}

// TestDetectsKnownVerdicts pins the oracle against hand-derived verdicts
// that do not come from internal/sim: literature facts small enough to
// check on paper.
func TestDetectsKnownVerdicts(t *testing.T) {
	cfg := DefaultConfig()
	sf := mustSimple(t, "<1/0/->")
	rdf := mustSimple(t, "<0r0/1/1>")
	drdf := mustSimple(t, "<0r0/1/0>")

	cases := []struct {
		test  march.Test
		fault linked.Fault
		want  bool
	}{
		// MATS+ reads every cell in both states: it detects the stuck-at.
		{march.MATSPlus, sf, true},
		// MATS+ reads each state only once, so the deceptive read (returns
		// the right value, then corrupts) escapes it...
		{march.MATSPlus, drdf, false},
		// ...while the double reads of March SS catch it.
		{march.MarchSS, drdf, true},
		// A single read suffices for the plain read-destructive fault.
		{march.MATSPlus, rdf, true},
	}
	for _, c := range cases {
		got, witness, err := Detects(c.test, c.fault, cfg)
		if err != nil {
			t.Fatalf("Detects(%s, %s): %v", c.test.Name, c.fault.ID(), err)
		}
		if got != c.want {
			t.Errorf("Detects(%s, %s) = %t, want %t (witness %v)", c.test.Name, c.fault.ID(), got, c.want, witness)
		}
	}
}

// TestLinkedMasking checks the masking behavior that motivates linked-fault
// testing (paper Section 3): FP2 can cancel FP1's corruption before a read
// observes it. The pair TF<0w1/0/-> → RDF<0r0/1/1>: the transition fault
// leaves the cell at 0 after w1; a subsequent read of the (expected 1) cell
// triggers the read-destructive primitive, returns 1 — the fault-free value
// — and restores the cell to 1. A test whose only observation after w1 is
// that single read never sees the fault.
func TestLinkedMasking(t *testing.T) {
	fp1, err := fp.ParseFP("<0w1/0/->")
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := fp.ParseFP("<0r0/1/1>")
	if err != nil {
		t.Fatal(err)
	}
	lf, err := linked.NewLF1(fp1, fp2)
	if err != nil {
		t.Fatalf("NewLF1: %v", err)
	}
	cfg := DefaultConfig()

	masked := mustParse(t, "masked", "c(w0) ^(w1,r1)")
	if det, _, err := Detects(masked, lf, cfg); err != nil || det {
		t.Fatalf("masked test: det=%t err=%v, want undetected (FP2 restores before the read)", det, err)
	}
	if det, _, err := Detects(march.MarchSS, lf, cfg); err != nil || !det {
		t.Fatalf("March SS: det=%t err=%v, want detected", det, err)
	}
}

// TestWitnessIsFirstInReferenceOrder pins the reference enumeration order
// of witnesses: placements ascending depth-first, then initial values, then
// ⇕ combinations. The stuck-at-0 fault under a test that never reads:
// every scenario misses, so the witness must be the very first one.
func TestWitnessIsFirstInReferenceOrder(t *testing.T) {
	blind := mustParse(t, "blind", "c(w0) c(w1)")
	sf := mustSimple(t, "<1/0/->")
	det, w, err := Detects(blind, sf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if det {
		t.Fatal("a test without reads cannot detect anything")
	}
	if got, want := w.String(), "cells@0 init=0 orders=^^"; got != want {
		t.Errorf("witness = %q, want %q", got, want)
	}
}

// TestErrorPaths: the oracle must reject what it cannot faithfully
// simulate, with errors where internal/sim errors too.
func TestErrorPaths(t *testing.T) {
	cfg := DefaultConfig()
	threeCell, ok := faultlist.ByName("list1")
	if !ok {
		t.Fatal("list1 missing")
	}
	var lf3 linked.Fault
	for _, f := range threeCell {
		if f.Cells == 3 {
			lf3 = f
			break
		}
	}
	if lf3.Cells != 3 {
		t.Fatal("list1 has no 3-cell fault")
	}
	if _, _, err := Detects(march.MATSPlus, lf3, Config{Size: 3, ExhaustiveOrders: true}); err == nil {
		t.Error("placing a 3-cell fault in a 3-cell memory must fail (no bystander)")
	}

	manyAny := mustParse(t, "many-any", strings.TrimSpace(strings.Repeat("c(w0) ", 13)))
	sf := mustSimple(t, "<1/0/->")
	if _, _, err := Detects(manyAny, sf, cfg); err == nil || !strings.Contains(err.Error(), "capped") {
		t.Errorf("13 ⇕ elements must exceed the expansion cap, got err=%v", err)
	}
}

// TestRandomTestsAreConsistentAndDeterministic: every generated stream
// passes the march validity and consistency checks, and the generator is a
// pure function of its seed.
func TestRandomTestsAreConsistentAndDeterministic(t *testing.T) {
	a := RandomTests(42, 50)
	b := RandomTests(42, 50)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("want 50 tests, got %d and %d", len(a), len(b))
	}
	for i, mt := range a {
		if err := mt.CheckConsistency(); err != nil {
			t.Errorf("random test %d inconsistent: %v", i, err)
		}
		if !mt.Equal(b[i]) {
			t.Errorf("random test %d not deterministic: %s vs %s", i, mt.ASCII(), b[i].ASCII())
		}
	}
	c := RandomTests(43, 50)
	same := 0
	for i := range a {
		if a[i].Equal(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

// TestMetamorphicPropertiesHold: the invariant suite must pass for library
// tests against the shipped lists (any violation would mean a semantics
// bug in the oracle — or a wrong property).
func TestMetamorphicPropertiesHold(t *testing.T) {
	cfg := DefaultConfig()
	for _, name := range []string{"simple", "list2", "dynamic2"} {
		faults, ok := faultlist.ByName(name)
		if !ok {
			t.Fatalf("list %q missing", name)
		}
		for _, mt := range []march.Test{march.MATSPlus, march.MarchSS, march.MarchABL1} {
			violations, err := CheckProperties(mt, faults, cfg)
			if err != nil {
				t.Fatalf("CheckProperties(%s, %s): %v", mt.Name, name, err)
			}
			for _, v := range violations {
				t.Errorf("%s vs %s: %s", mt.Name, name, v)
			}
		}
	}
}

// TestMetamorphicEngineSeesViolations: feed the engine a semantics we know
// breaks an invariant — a non-complement-closed verdict is impossible to
// fake without a second simulator, so instead check the transform helpers
// directly: the complement of the complement is the original, the mirror of
// the mirror is the original, and redundant-read variants stay consistent.
func TestMetamorphicEngineSeesViolations(t *testing.T) {
	for _, mt := range march.Lib() {
		mm := MirrorTest(MirrorTest(mt))
		mm.Name = mt.Name
		if !mm.Equal(mt) {
			t.Errorf("mirror∘mirror != id for %s", mt.Name)
		}
		cc := ComplementTest(ComplementTest(mt))
		cc.Name = mt.Name
		if !cc.Equal(mt) {
			t.Errorf("complement∘complement != id for %s", mt.Name)
		}
		for _, v := range RedundantReadVariants(mt) {
			if err := v.CheckConsistency(); err != nil {
				t.Errorf("redundant-read variant %s inconsistent: %v", v.Name, err)
			}
			if v.Length() != mt.Length()+1 {
				t.Errorf("variant %s length %d, want %d", v.Name, v.Length(), mt.Length()+1)
			}
		}
	}
	faults, _ := faultlist.ByName("simple")
	for _, f := range faults {
		cf := ComplementFault(ComplementFault(f))
		if cf.ID() != f.ID() {
			t.Errorf("complement∘complement != id for fault %s (got %s)", f.ID(), cf.ID())
		}
		if err := ComplementFault(f).Validate(); err != nil {
			t.Errorf("complement of %s invalid: %v", f.ID(), err)
		}
	}
}
