// Package oracle is an independent reference fault simulator used to
// cross-check internal/sim (DESIGN.md §11).
//
// Every march test this repository produces is certified by internal/sim —
// the same simulator the generator searched against. A bug in the shared
// fault semantics would therefore certify wrong tests without any test
// noticing: the loop is closed. This package breaks the loop the way the
// paper does with its separate in-house fault simulator (reference [13]):
// a second implementation of the fault semantics, written from the paper's
// definitions rather than from internal/sim's code, so the two can disagree.
//
// The oracle is deliberately written for clarity, not speed, and avoids
// every optimization internal/sim uses:
//
//   - no compiled op-stream schedules (internal/sim's trie of shared
//     order-choice prefixes): every scenario replays the full operation
//     stream from the start;
//   - no good-trace cache: the fault-free machine is simulated explicitly,
//     step by step, in lockstep with the faulty one;
//   - no placement-equivalence classes: every placement of the fault cells
//     is simulated, even when it is a relabeling of one already seen.
//
// Instead, the faulty memory is modeled as an explicit Mealy automaton
// (mealy.go): the state space is the 2^n memory contents crossed with the
// arming status of each dynamic fault-primitive binding, the input alphabet
// is the march operations applied to each address, and the output is the
// value a read returns. One automaton is built per (fault, placement); its
// transition function is evaluated state by state from the fault-primitive
// definitions. The two implementations share only the data model (fp,
// linked, march) — none of the verdict-path code.
//
// The semantic contract both implementations answer is the paper's: a fault
// is detected only if in *every* concrete scenario — every placement of the
// fault cells onto addresses, every initial value of those cells, and (for
// ⇕ elements under exhaustive expansion) every concrete address order —
// some read returns a value different from the fault-free machine's.
package oracle

import (
	"fmt"
	"strings"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// Config controls the simulated scenario space. It mirrors the knobs of
// internal/sim's Config (same defaults, so verdicts are comparable), but is
// a distinct type: the oracle resolves its defaults with its own code.
type Config struct {
	// Size is the number of memory cells; at least one more than the number
	// of fault cells so bystander behavior is exercised. 0 means 4.
	Size int
	// ExhaustiveOrders expands every ⇕ element into both concrete address
	// orders and requires detection under all combinations. When false, ⇕
	// iterates upward.
	ExhaustiveOrders bool
	// MaxAnyElements caps the ⇕ expansion; 0 means 12.
	MaxAnyElements int
}

// DefaultConfig matches internal/sim's DefaultConfig: 4 cells, exhaustive ⇕
// expansion.
func DefaultConfig() Config {
	return Config{Size: 4, ExhaustiveOrders: true}
}

func (c Config) size() int {
	if c.Size <= 0 {
		return 4
	}
	return c.Size
}

func (c Config) maxAnyElements() int {
	if c.MaxAnyElements <= 0 {
		return 12
	}
	return c.MaxAnyElements
}

// Scenario is one concrete simulation instance, in the same shape and with
// the same rendering as internal/sim's Scenario so witnesses can be compared
// textually across the two implementations.
type Scenario struct {
	// Placement maps fault cell index to memory address.
	Placement []int
	// Init holds the initial value of each fault cell; bystanders start at 0.
	Init []fp.Value
	// Orders is the concrete address order of every march element.
	Orders []march.AddrOrder
}

// String renders "cells@a,b init=vv orders=^v" — the same format
// sim.Scenario uses, so witness traces diff cleanly.
func (s Scenario) String() string {
	var b strings.Builder
	b.WriteString("cells@")
	for i, a := range s.Placement {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", a)
	}
	b.WriteString(" init=")
	for _, v := range s.Init {
		b.WriteString(v.String())
	}
	b.WriteString(" orders=")
	for _, o := range s.Orders {
		b.WriteString(o.ASCII())
	}
	return b.String()
}

// Result is the oracle's outcome for one fault.
type Result struct {
	Fault    linked.Fault
	Detected bool
	// Witness is one undetected scenario when Detected is false: the first
	// one in the reference enumeration order (placements in ascending
	// depth-first order, then initial values, then ⇕ order combinations),
	// which is also the order internal/sim reports, so witnesses agree when
	// the verdicts do.
	Witness *Scenario
	// Err is set when the fault could not be simulated.
	Err error
}

// Report aggregates the oracle simulation of a test against a fault list.
// Results are in fault-list order.
type Report struct {
	Test    march.Test
	Results []Result
}

// Total returns the number of faults simulated.
func (r Report) Total() int { return len(r.Results) }

// Detected returns the number of detected faults.
func (r Report) Detected() int {
	n := 0
	for _, res := range r.Results {
		if res.Detected {
			n++
		}
	}
	return n
}

// Full reports whether every fault was detected (vacuously true for an
// empty list, matching sim.Report.Full).
func (r Report) Full() bool { return r.Detected() == r.Total() }

// Missed returns the undetected faults.
func (r Report) Missed() []Result {
	var out []Result
	for _, res := range r.Results {
		if !res.Detected {
			out = append(out, res)
		}
	}
	return out
}

// Err returns the first simulation error, if any.
func (r Report) Err() error {
	for _, res := range r.Results {
		if res.Err != nil {
			return res.Err
		}
	}
	return nil
}

// Detects reports whether the test detects the fault in every scenario.
// When it does not, the returned witness is the first undetected scenario
// in the reference enumeration order.
func Detects(t march.Test, f linked.Fault, cfg Config) (bool, *Scenario, error) {
	size := cfg.size()
	if f.Cells >= size {
		return false, nil, fmt.Errorf("oracle: memory of %d cells cannot place a %d-cell fault with a bystander", size, f.Cells)
	}
	orderSets, err := expandOrders(t, cfg)
	if err != nil {
		return false, nil, err
	}
	if err := checkOps(t); err != nil {
		return false, nil, err
	}

	a := newAutomaton(f, size)
	k := f.Cells
	placement := make([]int, k)
	used := make([]bool, size)

	var witness *Scenario
	// place enumerates injective placements of the k fault cells onto the
	// size addresses, in ascending depth-first order. It returns false once
	// a missed scenario is found (witness set).
	var place func(depth int) bool
	place = func(depth int) bool {
		if depth == k {
			a.setPlacement(placement)
			for bits := 0; bits < 1<<k; bits++ {
				initWord := uint32(0)
				for c := 0; c < k; c++ {
					if bits>>c&1 == 1 {
						initWord |= 1 << placement[c]
					}
				}
				for _, orders := range orderSets {
					if a.run(t, orders, initWord) {
						continue
					}
					init := make([]fp.Value, k)
					for c := 0; c < k; c++ {
						init[c] = fp.ValueOf(uint8(bits>>c) & 1)
					}
					witness = &Scenario{
						Placement: append([]int(nil), placement...),
						Init:      init,
						Orders:    append([]march.AddrOrder(nil), orders...),
					}
					return false
				}
			}
			return true
		}
		for addr := 0; addr < size; addr++ {
			if used[addr] {
				continue
			}
			used[addr] = true
			placement[depth] = addr
			ok := place(depth + 1)
			used[addr] = false
			if !ok {
				return false
			}
		}
		return true
	}
	if !place(0) {
		return false, witness, nil
	}
	return true, nil, nil
}

// Simulate runs every fault through the oracle, sequentially (no worker
// fan-out: the oracle trades speed for a single, obviously ordered loop).
func Simulate(t march.Test, faults []linked.Fault, cfg Config) Report {
	rep := Report{Test: t, Results: make([]Result, len(faults))}
	for i, f := range faults {
		det, w, err := Detects(t, f, cfg)
		rep.Results[i] = Result{Fault: f, Detected: det, Witness: w, Err: err}
	}
	return rep
}

// expandOrders resolves the ⇕ elements into the concrete address-order
// assignments the configuration requires: a single upward resolution when
// exhaustive expansion is off, otherwise every combination, with bit j of
// the combination index choosing the direction of the j-th ⇕ element
// (0 = up). This is the same combination ordering internal/sim enumerates,
// re-derived here so witness scenarios are reported in the same order.
func expandOrders(t march.Test, cfg Config) ([][]march.AddrOrder, error) {
	var anyIdx []int
	base := make([]march.AddrOrder, len(t.Elems))
	for i, e := range t.Elems {
		base[i] = e.Order
		if e.Order == march.Any {
			anyIdx = append(anyIdx, i)
		}
	}
	if !cfg.ExhaustiveOrders || len(anyIdx) == 0 {
		resolved := make([]march.AddrOrder, len(base))
		for i, o := range base {
			if o == march.Any {
				o = march.Up
			}
			resolved[i] = o
		}
		return [][]march.AddrOrder{resolved}, nil
	}
	if len(anyIdx) > cfg.maxAnyElements() {
		return nil, fmt.Errorf("oracle: test %q has %d ⇕ elements; exhaustive order expansion capped at %d", t.Name, len(anyIdx), cfg.maxAnyElements())
	}
	n := 1 << len(anyIdx)
	out := make([][]march.AddrOrder, 0, n)
	for bits := 0; bits < n; bits++ {
		orders := make([]march.AddrOrder, len(base))
		copy(orders, base)
		for j, idx := range anyIdx {
			if bits>>j&1 == 0 {
				orders[idx] = march.Up
			} else {
				orders[idx] = march.Down
			}
		}
		out = append(out, orders)
	}
	return out, nil
}

// checkOps rejects operations the automaton's input alphabet cannot encode
// (writes of a non-binary value); march.Test.Validate already forbids them,
// but the oracle must not silently mis-simulate hand-built tests.
func checkOps(t march.Test) error {
	for _, e := range t.Elems {
		for _, op := range e.Ops {
			if op.Kind == fp.OpWrite && !op.Data.IsBinary() {
				return fmt.Errorf("oracle: test %q writes a non-binary value", t.Name)
			}
		}
	}
	return nil
}
