package oracle

import (
	"testing"

	"marchgen/internal/march"
	"marchgen/internal/mport"
	"marchgen/internal/word"
)

// TestWordRefEquivalence pins the word-oriented path differentially: for
// every library march and width, the slice-based internal/word machine and
// the mask-based reference must agree on every intra-word fault verdict.
func TestWordRefEquivalence(t *testing.T) {
	for _, width := range []int{2, 4, 8} {
		bgs, err := word.Backgrounds(width)
		if err != nil {
			t.Fatal(err)
		}
		faults := word.IntraWordFaults(width)
		cfg := word.Config{Words: 2, Width: width}
		for _, m := range march.Lib() {
			diffs, err := CrossCheckWord(m, faults, bgs, cfg)
			if err != nil {
				t.Fatalf("width %d %s: %v", width, m.Name, err)
			}
			for _, d := range diffs {
				t.Errorf("width %d %s: %s", width, m.Name, d)
			}
		}
	}
}

// TestWordTransparentRefEquivalence pins the transparent in-field path: the
// two implementations must agree on the transparent variant of every library
// march that admits one.
func TestWordTransparentRefEquivalence(t *testing.T) {
	width := 4
	bgs, err := word.Backgrounds(width)
	if err != nil {
		t.Fatal(err)
	}
	faults := word.IntraWordFaults(width)
	cfg := word.Config{Words: 2, Width: width}
	checked := 0
	for _, m := range march.Lib() {
		tt, err := word.Transparent(m)
		if err != nil {
			continue // not transparency-eligible; the transform's own tests cover rejection
		}
		checked++
		diffs, err := CrossCheckWordTransparent(tt, faults, bgs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for _, d := range diffs {
			t.Errorf("%s: %s", m.Name, d)
		}
	}
	if checked == 0 {
		t.Fatal("no library march admitted a transparent variant; transform too strict")
	}
}

// TestMportRefEquivalence pins the two-port path differentially over the
// whole weak-fault catalog: the lifted single-port library tests, the
// directed two-port generator's output, and a hand-written two-port march
// must all get identical verdicts from internal/mport and the event-based
// reference.
func TestMportRefEquivalence(t *testing.T) {
	catalog := mport.Catalog()
	cfg := mport.Config{}
	var tests []mport.Test
	for _, m := range []march.Test{march.MATSPlus, march.MarchCMinus} {
		lifted, err := mport.Lift(m)
		if err != nil {
			t.Fatal(err)
		}
		tests = append(tests, lifted)
	}
	gen, _, err := mport.Generate(catalog, mport.Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	tests = append(tests, gen)
	tests = append(tests, mport.MustParse("hand 2P", "c(w0:-) ^(r0:r0) ^(r0:r0,w1:-,r1:r1) v(r1:w0+1) c(r:r-1)"))

	for _, tt := range tests {
		diffs, err := CrossCheckMport(tt, catalog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tt.Name, err)
		}
		for _, d := range diffs {
			t.Errorf("%s: %s", tt.Name, d)
		}
	}
}

// TestMportRefSeesDivergence proves the cross-check has teeth: an
// intentionally broken reference verdict (a test that internal/mport says
// misses the catalog while a full-coverage test detects it) must disagree
// somewhere — here we just pin that the reference is not trivially true on
// an undetecting test.
func TestMportRefSeesDivergence(t *testing.T) {
	catalog := mport.Catalog()
	lifted, err := mport.Lift(march.MATSPlus)
	if err != nil {
		t.Fatal(err)
	}
	// A lifted single-port test must miss every weak two-port fault in both
	// implementations: they are defined to be invisible to one port.
	for _, f := range catalog {
		got, err := MportDetects(lifted, f, mport.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Errorf("reference claims lifted MATS+ detects %s; weak faults must be invisible to a single port", f.ID())
		}
	}
}
