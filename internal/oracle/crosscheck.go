package oracle

import (
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

// This file is the differential harness: the only place the oracle touches
// internal/sim, and strictly downstream of both verdicts — it runs the two
// simulators and diffs their flattened outcomes. The oracle's verdict path
// (oracle.go, mealy.go) does not import internal/sim.

// Verdict flattens an oracle Result into the shared comparison form.
func (r Result) Verdict() sim.Verdict {
	v := sim.Verdict{Fault: r.Fault.ID(), Detected: r.Detected}
	if r.Err != nil {
		v.Err = r.Err.Error()
		return v
	}
	if !r.Detected && r.Witness != nil {
		v.Witness = r.Witness.String()
	}
	return v
}

// Verdicts flattens an oracle report, in fault-list order.
func (r Report) Verdicts() []sim.Verdict {
	out := make([]sim.Verdict, len(r.Results))
	for i, res := range r.Results {
		out[i] = res.Verdict()
	}
	return out
}

// ConfigFromSim maps a sim.Config onto the oracle's scenario-space knobs.
// The Workers field has no oracle counterpart (the oracle is sequential).
func ConfigFromSim(cfg sim.Config) Config {
	return Config{
		Size:             cfg.Size,
		ExhaustiveOrders: cfg.ExhaustiveOrders,
		MaxAnyElements:   cfg.MaxAnyElements,
	}
}

// CrossCheck replays one (march test, fault list, configuration) triple
// through both simulators and returns every divergence: a detection verdict
// flipped, a fault in one missed-set but not the other, a differing witness
// trace, or one side erroring where the other succeeds. An empty result
// means the two independent implementations agree on the whole list.
func CrossCheck(t march.Test, faults []linked.Fault, cfg sim.Config) []sim.VerdictDiff {
	simRep := sim.Simulate(t, faults, cfg)
	oraRep := Simulate(t, faults, ConfigFromSim(cfg))
	return sim.DiffVerdicts(simRep.Verdicts(), oraRep.Verdicts())
}
