package oracle

import (
	"fmt"
	"math/rand"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// RandomTest derives a pseudo-random, self-consistent march test from the
// given source: 2–5 elements in random address orders (at most 3 ⇕
// elements, so exhaustive order expansion stays bounded), each with 1–4
// operations drawn from writes, consistent reads (only once the fault-free
// value is known, expecting exactly that value) and the occasional wait.
// The result always passes march.Test.Validate and CheckConsistency, so it
// can be fed to either simulator — the point is to exercise op-stream
// shapes the generator would never emit. Determinism: the same rand source
// state yields the same test.
func RandomTest(rng *rand.Rand, name string) march.Test {
	val := fp.VX // fault-free cell value, tracked like CheckConsistency
	anyBudget := 3
	nElems := 2 + rng.Intn(4)
	elems := make([]march.Element, 0, nElems)
	for e := 0; e < nElems; e++ {
		var order march.AddrOrder
		switch rng.Intn(3) {
		case 0:
			order = march.Up
		case 1:
			order = march.Down
		default:
			if anyBudget > 0 {
				order = march.Any
				anyBudget--
			} else {
				order = march.Up
			}
		}
		nOps := 1 + rng.Intn(4)
		ops := make([]fp.Op, 0, nOps)
		for o := 0; o < nOps; o++ {
			switch roll := rng.Intn(16); {
			case roll < 6: // write a random value
				val = fp.ValueOf(uint8(rng.Intn(2)))
				ops = append(ops, fp.W(val))
			case roll < 15: // read the current value if it is known
				if val.IsBinary() {
					ops = append(ops, fp.R(val))
				} else {
					val = fp.ValueOf(uint8(rng.Intn(2)))
					ops = append(ops, fp.W(val))
				}
			default: // wait (data retention window)
				ops = append(ops, fp.Wait)
			}
		}
		elems = append(elems, march.Element{Order: order, Ops: ops})
	}
	return march.Test{Name: name, Elems: elems, Source: "random op stream", Origin: march.OriginRandom}
}

// RandomTests derives n deterministic random tests from a seed, named
// "rnd-<seed>-<i>".
func RandomTests(seed int64, n int) []march.Test {
	rng := rand.New(rand.NewSource(seed))
	out := make([]march.Test, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, RandomTest(rng, fmt.Sprintf("rnd-%d-%d", seed, i)))
	}
	return out
}
