package oracle

import (
	"fmt"

	"marchgen/internal/fp"
	"marchgen/internal/march"
	"marchgen/internal/mport"
)

// This file is the independent two-port reference used to cross-check
// internal/mport. Where mport's simulator interleaves trigger evaluation,
// base writes and fault effects inside one stepPair method, the reference
// expands every cycle into an explicit event record (pre-state snapshot,
// port addresses, returned values) and applies the fault calculus over the
// record, so the two implementations only agree when the semantics —
// read-before-write, boundary clamping, firing conditions, effect values —
// agree.

// pairEvent is one fully resolved two-port cycle.
type pairEvent struct {
	addrA, addrB int // addrB < 0 when port B idles this cycle
	opA, opB     fp.Op
	preA, preB   fp.Value // faulty pre-state at the port addresses
	goodA, goodB fp.Value // good pre-state (what a fault-free read returns)
	faultyA      fp.Value // faulty value a port-A read returns
	faultyB      fp.Value
}

// resolveB reimplements port B's addressing rule from its documented
// semantics: Same shares port A's cell, Next/Prev clamp at the array
// boundary (port B idles when the neighbor does not exist).
func resolveB(p mport.PairOp, addrA, n int) int {
	switch p.BTarget {
	case mport.Same:
		return addrA
	case mport.Next:
		if addrA+1 < n {
			return addrA + 1
		}
	case mport.Prev:
		if addrA > 0 {
			return addrA - 1
		}
	}
	return -1
}

// weakCondHolds reimplements the WCC weak-condition predicate: the aggressor
// holds the required state and the port applies the required operation (any
// read matches a read condition; writes must match the written value).
func weakCondHolds(c mport.WeakCond, op fp.Op, state fp.Value) bool {
	if state != c.Init || op.Kind != c.Op.Kind {
		return false
	}
	return op.Kind != fp.OpWrite || op.Data == c.Op.Data
}

// mportMach is the reference two-port machine.
type mportMach struct {
	good, fault []fp.Value
}

// step resolves one cycle into an event, fires the fault calculus, applies
// the writes, and reports detection (any port's faulty read differing from
// the good machine's).
func (m *mportMach) step(f mport.Fault, cell, a1 int, p mport.PairOp, addrA, n int) bool {
	ev := pairEvent{addrA: addrA, addrB: resolveB(p, addrA, n), opA: p.A, opB: p.B}
	if p.BTarget == mport.None {
		ev.addrB = -1
	}
	ev.preA, ev.goodA = m.fault[ev.addrA], m.good[ev.addrA]
	ev.faultyA = ev.preA
	if ev.addrB >= 0 {
		ev.preB, ev.goodB = m.fault[ev.addrB], m.good[ev.addrB]
		ev.faultyB = ev.preB
	}

	// Fault calculus over the event.
	fire := false
	switch f.Class {
	case mport.WCC:
		if ev.addrB >= 0 && ev.addrA != ev.addrB && m.fault[cell] == f.State {
			a2 := a1 + 1
			forward := ev.addrA == a1 && ev.addrB == a2 &&
				weakCondHolds(f.C1, ev.opA, m.fault[a1]) && weakCondHolds(f.C2, ev.opB, m.fault[a2])
			backward := ev.addrA == a2 && ev.addrB == a1 &&
				weakCondHolds(f.C2, ev.opA, m.fault[a2]) && weakCondHolds(f.C1, ev.opB, m.fault[a1])
			fire = forward || backward
		}
	default: // W2RDF, W2DRDF, W2IRF
		if ev.opA.Kind == fp.OpRead && ev.addrB == ev.addrA && ev.opB.Kind == fp.OpRead &&
			ev.addrA == cell && m.fault[cell] == f.State {
			fire = true
			ev.faultyA, ev.faultyB = f.R, f.R
		}
	}

	// Writes land after the snapshot (read-before-write).
	if ev.opA.Kind == fp.OpWrite {
		m.good[ev.addrA] = ev.opA.Data
		m.fault[ev.addrA] = ev.opA.Data
	}
	if ev.addrB >= 0 && ev.opB.Kind == fp.OpWrite {
		m.good[ev.addrB] = ev.opB.Data
		m.fault[ev.addrB] = ev.opB.Data
	}
	if fire {
		m.fault[cell] = f.F()
	}

	detA := ev.opA.Kind == fp.OpRead && ev.faultyA != ev.goodA
	detB := ev.addrB >= 0 && ev.opB.Kind == fp.OpRead && ev.faultyB != ev.goodB
	return detA || detB
}

// mportScenario is one concrete instance of the fault.
type mportScenario struct {
	cell, a1 int
	init     []fp.Value
	orders   []march.AddrOrder
}

// mportScenarios enumerates placement × initial values × concrete orders,
// independently of mport's own enumeration.
func mportScenarios(t mport.Test, f mport.Fault, n int) []mportScenario {
	var placements []mportScenario
	if f.Class == mport.WCC {
		for a1 := 0; a1+1 < n; a1++ {
			for v := 0; v < n; v++ {
				if v != a1 && v != a1+1 {
					placements = append(placements, mportScenario{cell: v, a1: a1})
				}
			}
		}
	} else {
		for c := 0; c < n; c++ {
			placements = append(placements, mportScenario{cell: c, a1: -1})
		}
	}

	var anyIdx []int
	base := make([]march.AddrOrder, len(t.Elems))
	for i, e := range t.Elems {
		base[i] = e.Order
		if e.Order == march.Any {
			anyIdx = append(anyIdx, i)
		}
	}

	var out []mportScenario
	for _, pl := range placements {
		cells := refFaultCells(f, pl)
		for bits := 0; bits < 1<<len(cells); bits++ {
			init := make([]fp.Value, len(cells))
			for i := range cells {
				init[i] = fp.ValueOf(uint8(bits>>i) & 1)
			}
			for combo := 0; combo < 1<<len(anyIdx); combo++ {
				orders := append([]march.AddrOrder(nil), base...)
				for j, idx := range anyIdx {
					if combo>>j&1 == 0 {
						orders[idx] = march.Up
					} else {
						orders[idx] = march.Down
					}
				}
				out = append(out, mportScenario{cell: pl.cell, a1: pl.a1, init: init, orders: orders})
			}
		}
	}
	return out
}

func refFaultCells(f mport.Fault, pl mportScenario) []int {
	if f.Class == mport.WCC {
		return []int{pl.a1, pl.a1 + 1, pl.cell}
	}
	return []int{pl.cell}
}

// MportDetects is the reference verdict: the test detects the fault in every
// scenario.
func MportDetects(t mport.Test, f mport.Fault, cfg mport.Config) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	if err := f.Validate(); err != nil {
		return false, err
	}
	n := cfg.Size
	if n <= 0 {
		n = 4
	}
	if f.Cells() >= n {
		return false, fmt.Errorf("oracle: %d-cell fault needs an array larger than %d", f.Cells(), n)
	}
	m := &mportMach{good: make([]fp.Value, n), fault: make([]fp.Value, n)}
	for _, sc := range mportScenarios(t, f, n) {
		for i := range m.good {
			m.good[i] = fp.V0
			m.fault[i] = fp.V0
		}
		for i, c := range refFaultCells(f, sc) {
			m.good[c] = sc.init[i]
			m.fault[c] = sc.init[i]
		}
		detected := false
	run:
		for ei, e := range t.Elems {
			for _, addr := range sc.orders[ei].Addresses(n) {
				for _, p := range e.Ops {
					if m.step(f, sc.cell, sc.a1, p, addr, n) {
						detected = true
						break run
					}
				}
			}
		}
		if !detected {
			return false, nil
		}
	}
	return true, nil
}

// MportDiff records a verdict divergence between internal/mport and the
// event-based reference.
type MportDiff struct {
	Fault mport.Fault
	Mport bool // internal/mport verdict
	Ref   bool // reference verdict
}

// String renders the divergence.
func (d MportDiff) String() string {
	return fmt.Sprintf("%s: internal/mport=%v reference=%v", d.Fault.ID(), d.Mport, d.Ref)
}

// CrossCheckMport runs both two-port implementations over every fault and
// returns the divergences (empty means agreement).
func CrossCheckMport(t mport.Test, faults []mport.Fault, cfg mport.Config) ([]MportDiff, error) {
	var diffs []MportDiff
	for _, f := range faults {
		got, err := mport.Detects(t, f, cfg)
		if err != nil {
			return nil, err
		}
		want, err := MportDetects(t, f, cfg)
		if err != nil {
			return nil, err
		}
		if got != want {
			diffs = append(diffs, MportDiff{Fault: f, Mport: got, Ref: want})
		}
	}
	return diffs, nil
}
