package oracle

import (
	"fmt"

	"marchgen/internal/fp"
	"marchgen/internal/march"
	"marchgen/internal/word"
)

// This file is the independent word-oriented reference used to cross-check
// internal/word. Where word.go keeps each word as a []fp.Value slice and
// mutates it operation by operation, the reference packs every word into a
// pair of uint64 masks (good/faulty) and derives each step's next state from
// an explicit pre-state snapshot, so indexing, aliasing and
// order-of-evaluation bugs in either implementation surface as verdict
// divergences rather than cancelling out.

// wordMach is the mask-based good/faulty pair: bit i of word w is
// (mem[w] >> i) & 1.
type wordMach struct {
	width int
	good  []uint64
	fault []uint64
}

func newWordMach(words, width int) *wordMach {
	return &wordMach{width: width, good: make([]uint64, words), fault: make([]uint64, words)}
}

func maskValue(m uint64, bit int) fp.Value {
	return fp.ValueOf(uint8(m>>bit) & 1)
}

func setBit(m uint64, bit int, v fp.Value) uint64 {
	if v == fp.V1 {
		return m | 1<<bit
	}
	return m &^ (1 << bit)
}

// bgMask packs the word the background writes for march data d.
func bgMask(bg word.Background, d fp.Value) uint64 {
	var m uint64
	for i := range bg {
		if bg.Bit(i, d) == fp.V1 {
			m |= 1 << i
		}
	}
	return m
}

// settle applies the state-condition fault (CFst) to one word.
func (m *wordMach) settle(f word.Fault, w int) {
	if f.FP.Trigger != fp.TrigState {
		return
	}
	if f.FP.MatchesState(maskValue(m.fault[w], f.AggBit), maskValue(m.fault[w], f.VicBit)) {
		m.fault[w] = setBit(m.fault[w], f.VicBit, f.FP.F)
	}
}

// write applies a word-wide write of march data d under the background,
// evaluating both fault trigger sides against the pre-write snapshot.
func (m *wordMach) write(f word.Fault, bg word.Background, w int, d fp.Value) {
	pre := m.fault[w]
	preAgg, preVic := maskValue(pre, f.AggBit), maskValue(pre, f.VicBit)
	nm := bgMask(bg, d)
	mask := uint64(1)<<m.width - 1
	m.good[w] = nm & mask
	m.fault[w] = nm & mask
	if f.FP.MatchesOp(fp.W(bg.Bit(f.AggBit, d)), fp.RoleAggressor, preAgg, preVic) {
		m.fault[w] = setBit(m.fault[w], f.VicBit, f.FP.F)
	}
	if f.FP.MatchesOp(fp.W(bg.Bit(f.VicBit, d)), fp.RoleVictim, preAgg, preVic) {
		m.fault[w] = setBit(m.fault[w], f.VicBit, f.FP.F)
	}
	m.settle(f, w)
}

// read applies a word-wide read, returning whether the word-level compare
// against the good machine mismatches.
func (m *wordMach) read(f word.Fault, w int) bool {
	pre := m.fault[w]
	preAgg, preVic := maskValue(pre, f.AggBit), maskValue(pre, f.VicBit)
	mismatch := false
	if f.FP.MatchesOp(fp.R(preVic), fp.RoleVictim, preAgg, preVic) && f.FP.R.IsBinary() {
		if f.FP.R != maskValue(m.good[w], f.VicBit) {
			mismatch = true
		}
		m.fault[w] = setBit(m.fault[w], f.VicBit, f.FP.F)
	} else if f.FP.Trigger == fp.TrigOp && f.FP.OpRole == fp.RoleAggressor && f.FP.Op.Kind == fp.OpRead &&
		f.FP.MatchesOp(fp.R(preAgg), fp.RoleAggressor, preAgg, preVic) {
		m.fault[w] = setBit(m.fault[w], f.VicBit, f.FP.F)
	}
	if m.fault[w] != m.good[w] {
		mismatch = true
	}
	m.settle(f, w)
	return mismatch
}

// runWordRef applies the march under one background with every bit starting
// at init, reporting whether any read detects the fault.
func runWordRef(t march.Test, f word.Fault, bg word.Background, words int, init fp.Value) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	width := len(bg)
	m := newWordMach(words, width)
	var initMask uint64
	if init == fp.V1 {
		initMask = uint64(1)<<width - 1
	}
	for w := range m.good {
		m.good[w] = initMask
		m.fault[w] = initMask
		m.settle(f, w)
	}
	for _, e := range t.Elems {
		for _, w := range e.Order.Addresses(words) {
			for _, op := range e.Ops {
				switch op.Kind {
				case fp.OpWrite:
					m.write(f, bg, w, op.Data)
				case fp.OpRead:
					if m.read(f, w) {
						return true, nil
					}
				}
			}
		}
	}
	return false, nil
}

// WordDetects is the reference verdict for a word-oriented fault: detected
// iff for both uniform initial values some background detects it.
func WordDetects(t march.Test, f word.Fault, bgs []word.Background, cfg word.Config) (bool, error) {
	if err := f.Validate(); err != nil {
		return false, err
	}
	words, width := wordDims(cfg)
	if f.AggBit >= width || f.VicBit >= width {
		return false, fmt.Errorf("oracle: fault bits (%d,%d) exceed width %d", f.AggBit, f.VicBit, width)
	}
	for _, bg := range bgs {
		if len(bg) != width {
			return false, fmt.Errorf("oracle: background width %d, memory width %d", len(bg), width)
		}
	}
	for _, init := range []fp.Value{fp.V0, fp.V1} {
		detected := false
		for _, bg := range bgs {
			d, err := runWordRef(t, f, bg, words, init)
			if err != nil {
				return false, err
			}
			if d {
				detected = true
				break
			}
		}
		if !detected {
			return false, nil
		}
	}
	return true, nil
}

// WordDetectsTransparent is the reference verdict for the transparent mode:
// detected iff some representative content (background pattern) detects it.
func WordDetectsTransparent(t march.Test, f word.Fault, bgs []word.Background, cfg word.Config) (bool, error) {
	if err := f.Validate(); err != nil {
		return false, err
	}
	words, width := wordDims(cfg)
	if f.AggBit >= width || f.VicBit >= width {
		return false, fmt.Errorf("oracle: fault bits (%d,%d) exceed width %d", f.AggBit, f.VicBit, width)
	}
	for _, bg := range bgs {
		if len(bg) != width {
			return false, fmt.Errorf("oracle: background width %d, memory width %d", len(bg), width)
		}
		d, err := runWordTransparentRef(t, f, bg, words)
		if err != nil {
			return false, err
		}
		if d {
			return true, nil
		}
	}
	return false, nil
}

// runWordTransparentRef runs the (already transformed) transparent test with
// the content initialized to the background pattern itself.
func runWordTransparentRef(t march.Test, f word.Fault, bg word.Background, words int) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	m := newWordMach(words, len(bg))
	content := bgMask(bg, fp.V0)
	for w := range m.good {
		m.good[w] = content
		m.fault[w] = content
		m.settle(f, w)
	}
	for _, e := range t.Elems {
		for _, w := range e.Order.Addresses(words) {
			for _, op := range e.Ops {
				switch op.Kind {
				case fp.OpWrite:
					m.write(f, bg, w, op.Data)
				case fp.OpRead:
					if m.read(f, w) {
						return true, nil
					}
				}
			}
		}
	}
	return false, nil
}

func wordDims(cfg word.Config) (words, width int) {
	words, width = cfg.Words, cfg.Width
	if words <= 0 {
		words = 2
	}
	if width <= 0 {
		width = 4
	}
	return words, width
}

// WordDiff records a verdict divergence between internal/word and the
// mask-based reference.
type WordDiff struct {
	Fault  word.Fault
	Word   bool // internal/word verdict
	Ref    bool // reference verdict
	Transp bool // divergence on the transparent path
}

// String renders the divergence.
func (d WordDiff) String() string {
	mode := "word"
	if d.Transp {
		mode = "transparent"
	}
	return fmt.Sprintf("%s [%s]: internal/word=%v reference=%v", d.Fault.ID(), mode, d.Word, d.Ref)
}

// CrossCheckWord runs both word implementations over every fault and returns
// the divergences (empty means agreement).
func CrossCheckWord(t march.Test, faults []word.Fault, bgs []word.Background, cfg word.Config) ([]WordDiff, error) {
	var diffs []WordDiff
	for _, f := range faults {
		got, err := word.Detects(t, f, bgs, cfg)
		if err != nil {
			return nil, err
		}
		want, err := WordDetects(t, f, bgs, cfg)
		if err != nil {
			return nil, err
		}
		if got != want {
			diffs = append(diffs, WordDiff{Fault: f, Word: got, Ref: want})
		}
	}
	return diffs, nil
}

// CrossCheckWordTransparent cross-checks the transparent path.
func CrossCheckWordTransparent(t march.Test, faults []word.Fault, bgs []word.Background, cfg word.Config) ([]WordDiff, error) {
	var diffs []WordDiff
	for _, f := range faults {
		got, err := word.DetectsTransparent(t, f, bgs, cfg)
		if err != nil {
			return nil, err
		}
		want, err := WordDetectsTransparent(t, f, bgs, cfg)
		if err != nil {
			return nil, err
		}
		if got != want {
			diffs = append(diffs, WordDiff{Fault: f, Word: got, Ref: want, Transp: true})
		}
	}
	return diffs, nil
}
