package oracle

import (
	"fmt"
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

// TestOracleSimEquivalence pins the two independent simulators bit-identical
// — detection verdict, missed set, witness trace — across the full built-in
// fault-list library, both address-order regimes (exhaustive ⇕ expansion and
// the canonical ⇕→⇑ resolution) and memory sizes 3, 4 and 5. Size 3 also
// exercises the agreement of the error paths: three-cell faults cannot be
// placed there, and both sides must say so.
func TestOracleSimEquivalence(t *testing.T) {
	// A cheap and an expensive library test: MATS+ exercises every order
	// kind in 5n; March SL is the long linked-fault workhorse. The random
	// streams cover op shapes (double waits, repeated reads, back-to-back
	// write-read pairs) no library test has.
	tests := []march.Test{march.MATSPlus, march.MarchSL}
	tests = append(tests, RandomTests(7, 2)...)

	for _, name := range faultlist.Names() {
		faults, ok := faultlist.ByName(name)
		if !ok {
			t.Fatalf("ByName(%q): unknown list", name)
		}
		for _, size := range []int{3, 4, 5} {
			for _, exhaustive := range []bool{true, false} {
				cfg := sim.Config{Size: size, ExhaustiveOrders: exhaustive}
				for _, mt := range tests {
					if testing.Short() && (size == 5 && len(faults) > 100) {
						continue // the big lists at size 5 dominate -short runs
					}
					t.Run(fmt.Sprintf("%s/n%d/exh=%t/%s", name, size, exhaustive, mt.Name), func(t *testing.T) {
						diffs := CrossCheck(mt, faults, cfg)
						for _, d := range diffs {
							t.Errorf("divergence: %s", d)
						}
					})
				}
			}
		}
	}
}

// TestCrossCheckSeesDivergence proves the harness is not vacuous: verdicts
// doctored on one side must surface as diffs.
func TestCrossCheckSeesDivergence(t *testing.T) {
	a := []sim.Verdict{
		{Fault: "f1", Detected: true},
		{Fault: "f2", Detected: false, Witness: "cells@0 init=0 orders=^"},
		{Fault: "f3", Err: "boom"},
	}
	identical := sim.DiffVerdicts(a, a)
	if len(identical) != 0 {
		t.Fatalf("identical verdicts diffed: %v", identical)
	}

	b := append([]sim.Verdict(nil), a...)
	b[0].Detected = false
	b[1].Witness = "cells@1 init=0 orders=^"
	b[2].Err = "" // one side errors, the other does not
	diffs := sim.DiffVerdicts(a, b)
	if len(diffs) != 3 {
		t.Fatalf("want 3 diffs, got %d: %v", len(diffs), diffs)
	}
	wantFields := map[string]bool{"detected": true, "witness": true, "error": true}
	for _, d := range diffs {
		if !wantFields[d.Field] {
			t.Errorf("unexpected diff field %q in %s", d.Field, d)
		}
	}

	if diffs := sim.DiffVerdicts(a, a[:2]); len(diffs) != 1 || diffs[0].Field != "count" {
		t.Errorf("length mismatch not reported: %v", diffs)
	}
}
