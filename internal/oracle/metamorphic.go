package oracle

import (
	"fmt"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// This file is the metamorphic property engine: invariants the paper's
// fault semantics imply, checked by transforming a (test, fault) pair in a
// way with a known effect on the verdict and re-simulating. Metamorphic
// checks need no ground truth — they catch bugs that differential testing
// misses when both implementations share a misunderstanding, because each
// property is justified by a symmetry argument about the semantics itself,
// not by another simulator.

// Violation is one metamorphic property violation.
type Violation struct {
	// Property names the violated invariant.
	Property string
	// Test is the name of the (transformed) test that exposed it.
	Test string
	// Fault is the fault whose verdict broke the invariant.
	Fault string
	// Detail explains the expected and observed verdicts.
	Detail string
}

// String renders "property: test/fault: detail".
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s / %s: %s", v.Property, v.Test, v.Fault, v.Detail)
}

// MirrorTest returns the test with every concrete address order reversed
// (⇑ ↔ ⇓, ⇕ untouched). Under the mirror address relabeling a ↦ n-1-a —
// a topology permutation that maps ascending traversals to descending ones
// — every scenario of the original test bijects onto a scenario of the
// mirrored test, so detection verdicts must be identical whenever the ⇕
// elements are expanded exhaustively (under the canonical ⇕→⇑ resolution
// the bijection breaks: the ⇕ elements would need to flip too).
func MirrorTest(t march.Test) march.Test {
	out := t.Clone()
	out.Name = t.Name + "~mirror"
	for i, e := range out.Elems {
		switch e.Order {
		case march.Up:
			out.Elems[i].Order = march.Down
		case march.Down:
			out.Elems[i].Order = march.Up
		}
	}
	return out
}

// ComplementTest returns the data-background complement of the test: every
// written and expected value inverted. Complementing the data encoding of
// the memory is a symmetry of the fault semantics as long as the fault is
// complemented too (ComplementFault), so verdicts must be preserved — and a
// test certified Full against a complement-closed fault list stays Full
// under the complemented background.
func ComplementTest(t march.Test) march.Test {
	out := t.Clone()
	out.Name = t.Name + "~comp"
	for i, e := range out.Elems {
		for j, op := range e.Ops {
			if op.Kind == fp.OpWrite || op.Kind == fp.OpRead {
				out.Elems[i].Ops[j].Data = op.Data.Not() // Not(VX) = VX
			}
		}
	}
	return out
}

// ComplementFault inverts every data value of the fault's primitives:
// initial states, sensitizing operation data, fault value and read result.
// The complement of a valid fault is valid, and simulating a complemented
// fault under a complemented test is isomorphic to the original pair.
func ComplementFault(f linked.Fault) linked.Fault {
	out := f
	out.FPs = append([]linked.Binding(nil), f.FPs...)
	for i := range out.FPs {
		p := &out.FPs[i].FP
		p.AInit = p.AInit.Not()
		p.VInit = p.VInit.Not()
		if p.Op.Kind == fp.OpWrite || p.Op.Kind == fp.OpRead {
			p.Op.Data = p.Op.Data.Not()
		}
		if p.Op2.Kind == fp.OpWrite || p.Op2.Kind == fp.OpRead {
			p.Op2.Data = p.Op2.Data.Not()
		}
		p.F = p.F.Not()
		p.R = p.R.Not()
	}
	return out
}

// RedundantReadVariants returns one variant of the test per element whose
// fault-free exit value is known: the variant appends a read of that value
// to the element. Each variant is still self-consistent (a march element
// leaves every cell at the same fault-free value, so reading it back at the
// element's end observes exactly that value).
func RedundantReadVariants(t march.Test) []march.Test {
	var out []march.Test
	val := fp.VX
	for ei, e := range t.Elems {
		for _, op := range e.Ops {
			if op.Kind == fp.OpWrite {
				val = op.Data
			}
		}
		if !val.IsBinary() {
			continue
		}
		v := t.Clone()
		v.Name = fmt.Sprintf("%s~read%d", t.Name, ei)
		v.Elems[ei].Ops = append(v.Elems[ei].Ops, fp.R(val))
		out = append(out, v)
	}
	return out
}

// redundantReadSafe reports whether the redundant-read property applies to
// the fault. It holds for simple static faults: an extra consistent read
// either detects on the spot, silently diverges the victim (in which case
// the next observation detects at least as early as before), or is inert.
// It does NOT hold in general —
//
//   - linked faults: the inserted read can trigger a read-sensitized
//     masking primitive (e.g. FP2 = RDF with R equal to the fault-free
//     value) that silently restores the victim, losing a detection the
//     original stream had;
//   - dynamic faults: inserting any operation between two back-to-back
//     sensitizing operations breaks the arming sequence, so a detection
//     that relied on that pair disappears.
//
// Both exclusions are fault-semantics facts, not implementation choices;
// DESIGN.md §11 spells out the counterexamples.
func redundantReadSafe(f linked.Fault) bool {
	if f.Kind != linked.Simple {
		return false
	}
	for _, b := range f.FPs {
		if b.FP.IsDynamic() {
			return false
		}
	}
	return true
}

// CheckProperties runs the metamorphic suite for one test against a fault
// list under the oracle and returns every violated invariant. Faults the
// oracle cannot simulate under the configuration are skipped (they carry a
// simulation error, which CrossCheck already compares). The mirror property
// is only checked under ExhaustiveOrders (see MirrorTest).
func CheckProperties(t march.Test, faults []linked.Fault, cfg Config) ([]Violation, error) {
	if err := t.CheckConsistency(); err != nil {
		return nil, fmt.Errorf("oracle: metamorphic checks need a consistent test: %w", err)
	}
	var out []Violation

	base := make([]Result, len(faults))
	for i, f := range faults {
		det, w, err := Detects(t, f, cfg)
		base[i] = Result{Fault: f, Detected: det, Witness: w, Err: err}
	}

	if cfg.ExhaustiveOrders {
		mt := MirrorTest(t)
		for i, f := range faults {
			if base[i].Err != nil {
				continue
			}
			det, _, err := Detects(mt, f, cfg)
			if err != nil {
				return nil, fmt.Errorf("oracle: mirror variant of %q: %w", t.Name, err)
			}
			if det != base[i].Detected {
				out = append(out, Violation{
					Property: "mirror-orders",
					Test:     mt.Name,
					Fault:    f.ID(),
					Detail:   fmt.Sprintf("detected=%t on the original, %t on the mirrored orders", base[i].Detected, det),
				})
			}
		}
	}

	ct := ComplementTest(t)
	for i, f := range faults {
		if base[i].Err != nil {
			continue
		}
		cf := ComplementFault(f)
		det, _, err := Detects(ct, cf, cfg)
		if err != nil {
			return nil, fmt.Errorf("oracle: complement variant of %q: %w", t.Name, err)
		}
		if det != base[i].Detected {
			out = append(out, Violation{
				Property: "data-complement",
				Test:     ct.Name,
				Fault:    f.ID(),
				Detail:   fmt.Sprintf("detected=%t on the original, %t on the complemented background", base[i].Detected, det),
			})
		}
	}

	for _, variant := range RedundantReadVariants(t) {
		for i, f := range faults {
			if base[i].Err != nil || !base[i].Detected || !redundantReadSafe(f) {
				continue
			}
			det, _, err := Detects(variant, f, cfg)
			if err != nil {
				return nil, fmt.Errorf("oracle: redundant-read variant of %q: %w", t.Name, err)
			}
			if !det {
				out = append(out, Violation{
					Property: "redundant-read",
					Test:     variant.Name,
					Fault:    f.ID(),
					Detail:   "detected by the original test but lost after inserting a consistent read",
				})
			}
		}
	}

	return out, nil
}
