// Package marchgen is a Go reproduction of "Automatic March Tests
// Generations for Static Linked Faults in SRAMs" (Benso, Bosio, Di Carlo,
// Di Natale, Prinetto — DATE 2006): an automatic generator of SRAM march
// tests targeting static linked faults, together with every substrate the
// paper depends on.
//
// # What a linked fault is
//
// A linked fault is a pair of fault primitives FP1 → FP2 where the second
// masks the first: FP2 flips the victim cell back to its fault-free value
// before any read can observe FP1's corruption, which is why classic march
// tests (March C-, MATS+, ...) miss these faults. Detecting a linked fault
// requires observing at least one of the two primitives in isolation.
//
// # Package map
//
//   - marchgen (this package) — stable facade over the internal packages.
//   - internal/fp — fault primitive notation <S/F/R> and the static fault
//     catalog (SF, TF, WDF, RDF, DRDF, IRF, DRF, CFst, CFds, CFtr, CFwd,
//     CFrd, CFdr, CFir).
//   - internal/linked, internal/faultlist — the linked fault model
//     (Definition 6/7) and the paper's Fault Lists #1 and #2.
//   - internal/automaton, internal/graph, internal/afp — the memory Mealy
//     automaton, the pattern graph (Figures 2-4), and addressed fault
//     primitives / test patterns (Definitions 4, 5, 7).
//   - internal/march — march test notation, parser and the published test
//     library (March SL, LF1, ABL, RABL, ABL1, ...).
//   - internal/sim — the memory fault simulator used to certify every
//     generated test, with dynamic-fault arming and witness tracing.
//     Production paths run on compiled simulation schedules (op-stream
//     tries with a precomputed good-machine trace, placement-equivalence
//     classes, pooled machines) pinned bit-identical to a retained
//     per-scenario reference interpreter; see DESIGN.md §7.
//   - internal/core — the generation algorithm (Section 5, Figure 5),
//     including the Section 7 order-constrained profiles.
//   - internal/bist, internal/defect, internal/topo, internal/word,
//     internal/diagnose, internal/af, internal/mport — the extensions:
//     BIST cost model, defect-to-fault mapping, array topology,
//     word-oriented memories, fault diagnosis, address decoder faults and
//     the two-port memory prototype (see DESIGN.md for the full
//     inventory).
//
// # Quick start
//
//	faults := marchgen.List2()                       // single-cell linked faults
//	res, err := marchgen.Generate(faults, marchgen.Options{Name: "March X1"})
//	if err != nil { ... }
//	fmt.Println(res.Test)            // e.g. ⇕(w0) ⇑(r0,r0,w1,w1,r1,r1)
//	fmt.Println(res.Report.Summary()) // 18/18 detected (100.0%)
//
// See the examples directory and the cmd tools (marchgen, marchsim,
// faultls, pgdot, table1) for complete programs.
package marchgen
