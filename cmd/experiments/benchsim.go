package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

// The simulator throughput benchmark behind the -bench-sim flag. It mirrors
// internal/sim's BenchmarkSimulate/BenchmarkDetectsFaultScheduled and writes
// the measurements next to the frozen pre-schedule baseline so the speedup
// of the compiled-schedule layer stays a recorded, reproducible number.

type benchEntry struct {
	Name            string  `json:"name"`
	Test            string  `json:"test"`
	List            string  `json:"list"`
	Faults          int     `json:"faults"`
	Scenarios       int     `json:"scenarios"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
	// SpeedupVsScalar is the lane engine's throughput ratio over the
	// scalar compiled schedule on the same workload; only the lanes
	// section fills it.
	SpeedupVsScalar float64 `json:"speedup_vs_scalar,omitempty"`
}

type benchFile struct {
	Generated string       `json:"generated"`
	Config    string       `json:"config"`
	Note      string       `json:"note"`
	Baseline  []benchEntry `json:"baseline"`
	Current   []benchEntry `json:"current"`
	// Lanes holds the same workloads under the default bit-parallel lane
	// engine; Current is pinned to the scalar compiled schedule
	// (DisableLanes) so the three sections record the full history:
	// per-scenario baseline → compiled schedule → compiled schedule × 48
	// lanes.
	Lanes []benchEntry `json:"lanes"`
}

// baselineBenchSim holds the measurements of the per-scenario simulator
// before the compiled-schedule layer (commit "growth seed", Intel Xeon
// 2.10 GHz, go1.22, -benchtime 3x). Scenario counts are filled in at
// runtime — the scenario space is unchanged by the schedule.
var baselineBenchSim = []benchEntry{
	{Name: "Simulate", Test: "March SL", List: "List1", NsPerOp: 156986337, AllocsPerOp: 357452, BytesPerOp: 11416445},
	{Name: "Simulate", Test: "March ABL", List: "List1", NsPerOp: 131679418, AllocsPerOp: 375568, BytesPerOp: 12010349},
	{Name: "Simulate", Test: "March LF1", List: "List2", NsPerOp: 200520, AllocsPerOp: 1251, BytesPerOp: 37853},
	{Name: "DetectsFault", Test: "March SL", List: "LF3-pair", NsPerOp: 690716, AllocsPerOp: 1165, BytesPerOp: 37080},
}

func benchLists() (map[string][]linked.Fault, error) {
	lf, err := linked.NewLF3(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<0w1;1/0/->"))
	if err != nil {
		return nil, err
	}
	return map[string][]linked.Fault{
		"List1":    faultlist.List1(),
		"List2":    faultlist.List2(),
		"LF3-pair": {lf},
	}, nil
}

func benchTests() map[string]march.Test {
	return map[string]march.Test{
		"March SL":  march.MarchSL,
		"March ABL": march.MarchABL,
		"March LF1": march.MarchLF1,
	}
}

func scenarioSpace(t march.Test, faults []linked.Fault, cfg sim.Config) (int, error) {
	s, err := sim.NewSchedule(t, cfg)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, f := range faults {
		n, err := s.ScenarioCount(f)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

func runBenchSim(path string, w io.Writer) error {
	cfg := sim.DefaultConfig()
	scalarCfg := cfg
	scalarCfg.DisableLanes = true
	lists, err := benchLists()
	if err != nil {
		return err
	}
	tests := benchTests()

	measure := func(e benchEntry, cfg sim.Config) (benchEntry, error) {
		t, faults := tests[e.Test], lists[e.List]
		var r testing.BenchmarkResult
		switch e.Name {
		case "Simulate":
			r = testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := sim.Simulate(t, faults, cfg).Err(); err != nil {
						b.Fatal(err)
					}
				}
			})
		case "DetectsFault":
			s, err := sim.NewSchedule(t, cfg)
			if err != nil {
				return e, err
			}
			r = testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, f := range faults {
						if _, _, err := s.DetectsFault(f); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		default:
			return e, fmt.Errorf("unknown benchmark %q", e.Name)
		}
		e.NsPerOp = r.NsPerOp()
		e.AllocsPerOp = r.AllocsPerOp()
		e.BytesPerOp = r.AllocedBytesPerOp()
		return e, nil
	}

	out := benchFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Config:    "sim.DefaultConfig(): 4 cells, exhaustive ⇕ expansion",
		Note: "baseline = per-scenario simulator before the compiled-schedule layer; " +
			"current = compiled schedule with lanes disabled; lanes = default bit-parallel engine; " +
			"scenarios/sec = scenarios / (ns_per_op / 1e9)",
	}
	for _, e := range baselineBenchSim {
		e.Faults = len(lists[e.List])
		scenarios, err := scenarioSpace(tests[e.Test], lists[e.List], cfg)
		if err != nil {
			return err
		}
		e.Scenarios = scenarios
		e.ScenariosPerSec = float64(e.Scenarios) / (float64(e.NsPerOp) / 1e9)
		out.Baseline = append(out.Baseline, e)

		cur, err := measure(e, scalarCfg)
		if err != nil {
			return err
		}
		cur.Faults = e.Faults
		cur.Scenarios = e.Scenarios
		cur.ScenariosPerSec = float64(cur.Scenarios) / (float64(cur.NsPerOp) / 1e9)
		out.Current = append(out.Current, cur)

		ln, err := measure(e, cfg)
		if err != nil {
			return err
		}
		ln.Faults = e.Faults
		ln.Scenarios = e.Scenarios
		ln.ScenariosPerSec = float64(ln.Scenarios) / (float64(ln.NsPerOp) / 1e9)
		ln.SpeedupVsScalar = float64(cur.NsPerOp) / float64(ln.NsPerOp)
		out.Lanes = append(out.Lanes, ln)

		fmt.Fprintf(w, "  %-12s %-10s %-8s scalar %12d ns/op (baseline %12d, %.1fx), lanes %12d ns/op (%.1fx over scalar)\n",
			cur.Name, cur.Test, cur.List, cur.NsPerOp, e.NsPerOp,
			float64(e.NsPerOp)/float64(cur.NsPerOp), ln.NsPerOp, ln.SpeedupVsScalar)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote", path)
	return nil
}
