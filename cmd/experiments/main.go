// Command experiments regenerates every experiment in EXPERIMENTS.md beyond
// Table 1 (cmd/table1 handles that one): the coverage matrix of the march
// library over all fault lists, the dynamic-fault extension, the
// order-constrained generation trade-off with its BIST costs, the two-port
// prototype, and the defect-coverage matrix.
//
// Usage:
//
//	experiments                    # everything (minutes)
//	experiments -quick             # skip the generation-heavy sections
//	experiments -bench-sim FILE    # only benchmark the fault simulator,
//	                               # writing FILE (see BENCH_sim.json)
//	experiments -bench-opt FILE    # only run the march optimizer against
//	                               # the Table 1 baselines (see BENCH_opt.json)
//
// Exit codes:
//
//	0  every requested section rendered
//	1  generation, simulation or output error
//	2  usage error (bad flags)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"marchgen"
	"marchgen/internal/af"
	"marchgen/internal/bist"
	"marchgen/internal/buildinfo"
	"marchgen/internal/defect"
	"marchgen/internal/diagnose"
	"marchgen/internal/faultlist"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/mport"
	"marchgen/internal/report"
	"marchgen/internal/sim"
	"marchgen/internal/word"
)

// Exit codes of the experiments command.
const (
	exitOK    = 0 // every requested section rendered
	exitErr   = 1 // generation / simulation / output errors
	exitUsage = 2 // flag errors
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process plumbing factored out so tests can drive
// the command end to end and assert on its exit code and output.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "skip the generation-heavy sections")
	benchSim := fs.String("bench-sim", "", "benchmark the fault simulator and write the results to `FILE`, then exit")
	benchOpt := fs.String("bench-opt", "", "run the march optimizer against the Table 1 baselines and write the results to `FILE`, then exit")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *version {
		buildinfo.Fprint(stdout, "experiments")
		return exitOK
	}

	if *benchSim != "" {
		fmt.Fprintln(stdout, "== Fault simulator throughput (compiled schedules vs pre-schedule baseline) ==")
		if err := runBenchSim(*benchSim, stdout); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return exitErr
		}
		return exitOK
	}

	if *benchOpt != "" {
		fmt.Fprintln(stdout, "== March optimizer vs Table 1 baselines (37n / 35n / 9n) ==")
		if err := runBenchOpt(*benchOpt, stdout); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return exitErr
		}
		return exitOK
	}

	if err := runAll(stdout, *quick); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return exitErr
	}
	return exitOK
}

// runAll renders every section of EXPERIMENTS.md to w, in order.
func runAll(w io.Writer, quick bool) error {
	cfg := sim.DefaultConfig()
	list1 := faultlist.List1()
	list2 := faultlist.List2()
	simple := faultlist.SimpleStatic()
	dynamic := faultlist.Dynamic()

	// Section 1: library coverage matrix.
	fmt.Fprintln(w, "== March library coverage (detected / total) ==")
	cov := &report.Table{Header: []string{"March Test", "O(n)", "Simple(48)", "List2(18)", "List1(594)", "Dynamic(66)"}}
	for _, m := range march.Lib() {
		rs := sim.Simulate(m, simple, cfg)
		r2 := sim.Simulate(m, list2, cfg)
		r1 := sim.Simulate(m, list1, cfg)
		rd := sim.Simulate(m, dynamic, cfg)
		if err := firstErr(rs, r2, r1, rd); err != nil {
			return err
		}
		cov.AddRow(m.Name, m.Complexity(),
			fmt.Sprint(rs.Detected()), fmt.Sprint(r2.Detected()),
			fmt.Sprint(r1.Detected()), fmt.Sprint(rd.Detected()))
	}
	if err := cov.Render(w); err != nil {
		return err
	}

	// Section 2: BIST costs of the comparison tests.
	fmt.Fprintln(w, "\n== BIST cost (1024 cells, 1000 cycles per delay) ==")
	bt := &report.Table{Header: []string{"March Test", "Cycles", "Elements", "Order switches", "Single order"}}
	for _, m := range []march.Test{march.MarchSL, march.MarchABL, march.MarchRABL, march.MarchABL1, march.MarchG} {
		c := bist.Estimate(m, 1024, 1000)
		bt.AddRow(m.Name, fmt.Sprint(c.Cycles), fmt.Sprint(c.Elements),
			fmt.Sprint(c.OrderSwitches), fmt.Sprint(c.SingleOrder))
	}
	if err := bt.Render(w); err != nil {
		return err
	}

	// Section 3: defect coverage matrix.
	fmt.Fprintln(w, "\n== Defect class coverage ==")
	dt := &report.Table{Header: []string{"Defect", "FPs", "MATS+", "March C-", "March SS", "March G", "March SL"}}
	refs := []march.Test{march.MATSPlus, march.MarchCMinus, march.MarchSS, march.MarchG, march.MarchSL}
	for _, k := range defect.Kinds() {
		d := defect.Defect{Kind: k}
		faults, err := d.Faults()
		if err != nil {
			return err
		}
		row := []string{d.String(), fmt.Sprint(len(faults))}
		for _, m := range refs {
			r := sim.Simulate(m, faults, cfg)
			if err := r.Err(); err != nil {
				return err
			}
			mark := "-"
			if r.Full() {
				mark = "full"
			} else if r.Detected() > 0 {
				mark = fmt.Sprintf("%d/%d", r.Detected(), r.Total())
			}
			row = append(row, mark)
		}
		dt.AddRow(row...)
	}
	if err := dt.Render(w); err != nil {
		return err
	}

	// Section 3b: word-oriented backgrounds.
	fmt.Fprintln(w, "\n== Word-oriented memories (4-bit words, intra-word couplings) ==")
	wcfg := word.Config{Words: 2, Width: 4}
	testable := word.TestableIntraWordFaults(4)
	bgsAll, err := word.Backgrounds(4)
	if err != nil {
		return err
	}
	solid := []word.Background{word.Solid(4)}
	wt := &report.Table{Header: []string{"March Test", "Solid bg", "Standard set"}}
	for _, m := range []march.Test{march.MATSPlus, march.MarchCMinus, march.MarchSS} {
		dS, err := word.Coverage(m, testable, solid, wcfg)
		if err != nil {
			return err
		}
		dA, err := word.Coverage(m, testable, bgsAll, wcfg)
		if err != nil {
			return err
		}
		wt.AddRow(m.Name, fmt.Sprintf("%d/%d", dS, len(testable)), fmt.Sprintf("%d/%d", dA, len(testable)))
	}
	if err := wt.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "(%d transition-write intra-word disturbs are march-untestable; see EXPERIMENTS.md §10)\n",
		len(word.IntraWordFaults(4))-len(testable))

	// Section 3b2: address decoder faults.
	fmt.Fprintln(w, "\n== Address decoder faults (40 instances on 4 cells) ==")
	afFaults := af.All(4)
	for _, m := range []march.Test{march.MATSPlus, march.MarchSL, march.MarchLF1, march.MarchABL1} {
		got, err := af.Coverage(m, afFaults, 4)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10s (%4s): %d/%d\n", m.Name, m.Complexity(), got, len(afFaults))
	}

	// Section 3c: diagnosis resolution.
	fmt.Fprintln(w, "\n== Diagnosis resolution (syndrome dictionaries, 4 cells) ==")
	for _, m := range []march.Test{march.MATSPlus, march.MarchSS} {
		d, err := diagnose.Build(m, faultlist.SimpleSingleCell(), sim.Config{Size: 4})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-9s %s\n", m.Name, d.Resolution())
	}

	// Section 4: two-port prototype (single-port blindness).
	fmt.Fprintln(w, "\n== Two-port weak faults (Section 7 multi-port extension) ==")
	cat := mport.Catalog()
	fmt.Fprintf(w, "catalog: %d faults (6 same-cell double-read + 32 weak coupled concurrent)\n", len(cat))
	for _, sp := range []march.Test{march.MarchCMinus, march.MarchSL} {
		lifted, err := mport.Lift(sp)
		if err != nil {
			return err
		}
		r, err := mport.Simulate(lifted, cat, mport.Config{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10s via one port: %d/%d detected\n", sp.Name, r.Detected, r.Total)
	}

	if quick {
		fmt.Fprintln(w, "\n(-quick: generation sections skipped)")
		return nil
	}

	// Section 5: dynamic-fault generation.
	fmt.Fprintln(w, "\n== Dynamic fault generation (ETS'05 companion scope) ==")
	dres, err := marchgen.Generate(dynamic, marchgen.Options{Name: "March DYN"})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "generated %s: %s, %d/%d certified (March RAW at 26n reaches %d/66)\n",
		dres.Test.Complexity(), shorten(dres.Test.String(), 70),
		dres.Report.Detected(), dres.Report.Total(),
		sim.Simulate(march.MarchRAW, dynamic, cfg).Detected())

	// Section 6: order-constrained generation.
	fmt.Fprintln(w, "\n== Order-constrained generation (Section 7 future work) ==")
	upL2, err := marchgen.Generate(list2, marchgen.Options{Name: "UP-L2", Orders: marchgen.OrderUpOnly})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "all-⇑ for List #2: %s at %d/%d\n", upL2.Test.Complexity(), upL2.Report.Detected(), upL2.Report.Total())
	if _, err := marchgen.Generate(list1, marchgen.Options{Name: "UP-L1", Orders: marchgen.OrderUpOnly}); err != nil {
		fmt.Fprintf(w, "all-⇑ for List #1 refuses, as proved: %v\n", err)
	} else {
		fmt.Fprintln(w, "all-⇑ for List #1 unexpectedly succeeded — EXPERIMENTS.md finding changed!")
	}

	// Section 7: two-port generation.
	fmt.Fprintln(w, "\n== Two-port generation ==")
	t2, r2p, err := mport.Generate(cat, mport.Options{Name: "March 2P"})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "generated %s: %d elements, %d/%d certified\n", t2.Complexity(), len(t2.Elems), r2p.Detected, r2p.Total)

	// Section 8: the grand union.
	fmt.Fprintln(w, "\n== Unified generation (linked + simple + dynamic, 708 faults) ==")
	all := append(append([]linked.Fault{}, list1...), append(simple, dynamic...)...)
	ures, err := marchgen.Generate(all, marchgen.Options{Name: "March ALL"})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "generated %s at %d/%d certified in %.1f s\n",
		ures.Test.Complexity(), ures.Report.Detected(), ures.Report.Total(), ures.Stats.Duration.Seconds())
	return nil
}

func firstErr(rs ...sim.Report) error {
	for _, r := range rs {
		if err := r.Err(); err != nil {
			return err
		}
	}
	return nil
}

func shorten(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n]) + "..."
}
