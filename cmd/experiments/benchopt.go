package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"marchgen/internal/faultlist"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/optimize"
)

// The optimizer benchmark behind the -bench-opt flag: run the search from
// the paper's Table 1 tests and record what it finds against the published
// lengths (March SL 37n and March ABL 35n for List #1, March ABL1 9n for
// List #2). Seeds are fixed, so BENCH_opt.json regenerates bit-identically
// up to the timestamp and the wall-clock seconds.

type optBenchEntry struct {
	List        string  `json:"list"`
	Faults      int     `json:"faults"`
	SeedTest    string  `json:"seed_test"`
	SeedLength  int     `json:"seed_length"`
	PaperLength int     `json:"paper_length"`
	Budget      int     `json:"budget"`
	RngSeed     int64   `json:"rng_seed"`
	Length      int     `json:"length"`
	Test        string  `json:"test"`
	Evaluations int     `json:"evaluations"`
	Improved    bool    `json:"improved"`
	MoveTrace   string  `json:"move_trace"`
	Seconds     float64 `json:"search_seconds"`
}

type optBenchFile struct {
	Generated string          `json:"generated"`
	Note      string          `json:"note"`
	Entries   []optBenchEntry `json:"entries"`
}

// optBenchWorkloads are the Table 1 attack points: fixed seeds and budgets
// so every regeneration searches the same trajectory.
// Only two library tests fully cover List #1 under this reproduction's
// simulator (March SL at 41n and the reconstructed 43n test), so those are
// the List #1 seeds; the published 37n (March ABL) and 35n (March RABL)
// lengths are the baselines their winners are compared against.
var optBenchWorkloads = []struct {
	list    string
	seed    march.Test
	paper   int
	budget  int
	rngSeed int64
}{
	{"list2", march.MarchABL1, 9, 400, 1},
	{"list1", march.MarchSL, 37, 150, 1},
	{"list1", march.March43N, 35, 150, 1},
}

func runBenchOpt(path string, w io.Writer) error {
	out := optBenchFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Note: "search-based optimizer (internal/optimize) seeded from the paper's Table 1 tests; " +
			"paper_length = the published complexity the run attacks; every winner is " +
			"oracle-certified before it is recorded",
	}
	for _, wl := range optBenchWorkloads {
		var faults []linked.Fault
		switch wl.list {
		case "list1":
			faults = faultlist.List1()
		case "list2":
			faults = faultlist.List2()
		default:
			return fmt.Errorf("unknown bench list %q", wl.list)
		}
		seed := wl.seed
		res, err := optimize.Run(faults, optimize.Options{
			Name:     wl.seed.Name + " opt",
			Seed:     wl.rngSeed,
			Budget:   wl.budget,
			SeedTest: &seed,
		})
		if err != nil {
			return fmt.Errorf("%s from %s: %v", wl.list, wl.seed.Name, err)
		}
		e := optBenchEntry{
			List:        wl.list,
			Faults:      len(faults),
			SeedTest:    wl.seed.Name,
			SeedLength:  res.Stats.SeedLength,
			PaperLength: wl.paper,
			Budget:      wl.budget,
			RngSeed:     wl.rngSeed,
			Length:      res.Test.Length(),
			Test:        res.Test.String(),
			Evaluations: res.Stats.Evaluations,
			Improved:    res.Stats.Improved,
			MoveTrace:   res.Test.Prov.MoveTrace,
			Seconds:     res.Stats.Duration.Seconds(),
		}
		out.Entries = append(out.Entries, e)
		fmt.Fprintf(w, "  %-6s from %-10s (%2dn, paper %2dn): found %2dn in %d evaluations (%.1f s)\n",
			e.List, e.SeedTest, e.SeedLength, e.PaperLength, e.Length, e.Evaluations, e.Seconds)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote", path)
	return nil
}
