package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// -quick renders every simulation-only section and skips the
// generation-heavy ones.
func TestQuickSections(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full library against list1; skipped in -short runs")
	}
	code, out, errOut := runCmd(t, "-quick")
	if code != exitOK {
		t.Fatalf("exit %d; stderr: %s", code, errOut)
	}
	for _, want := range []string{
		"March library coverage",
		"BIST cost",
		"Defect class coverage",
		"Word-oriented memories",
		"Address decoder faults",
		"Diagnosis resolution",
		"Two-port weak faults",
		"generation sections skipped",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "Unified generation") {
		t.Error("-quick still ran the generation sections")
	}
}

func TestUsageError(t *testing.T) {
	if code, _, _ := runCmd(t, "-badflag"); code != exitUsage {
		t.Fatalf("bad flag: exit %d, want %d", code, exitUsage)
	}
}

func TestVersionFlag(t *testing.T) {
	code, out, _ := runCmd(t, "-version")
	if code != exitOK || out == "" {
		t.Fatalf("exit %d, output %q", code, out)
	}
}
