// Command faultls explores the fault model space: the static fault
// primitive catalog, the linked fault taxonomy, and the paper's fault lists.
//
// Usage:
//
//	faultls -classes              # the functional fault model classes
//	faultls -class CFds           # the primitives of one class
//	faultls -list list2           # the faults of a list
//	faultls -list list1 -summary  # per-kind counts only
//	faultls -marches              # the march test library with origins
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"marchgen/internal/buildinfo"
	"marchgen/internal/defect"
	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// Exit codes of the faultls command.
const (
	exitOK    = 0
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process plumbing factored out so tests can drive
// the command end to end and assert on its exit code and output.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultls", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		classes = fs.Bool("classes", false, "list the functional fault model classes")
		class   = fs.String("class", "", "list the fault primitives of one class (e.g. TF, CFds)")
		list    = fs.String("list", "", "list the faults of a fault list (list1, list2, simple, ...)")
		summary = fs.Bool("summary", false, "with -list: print per-kind counts only")
		defects = fs.Bool("defects", false, "list the physical defect classes and their fault mappings")
		marches = fs.Bool("marches", false, "list the march test library with origin and provenance")
		version = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	switch {
	case *version:
		buildinfo.Fprint(stdout, "faultls")

	case *defects:
		for _, k := range defect.Kinds() {
			d := defect.Defect{Kind: k}
			fmt.Fprintf(stdout, "%s:\n", d)
			for _, f := range d.FaultPrimitives() {
				fmt.Fprintf(stdout, "  %s\n", f.ID())
			}
		}

	case *marches:
		for _, t := range march.Lib() {
			origin := string(t.Origin)
			if origin == "" {
				origin = "-"
			}
			note := t.Source
			if t.Reconstructed {
				note += " (reconstructed)"
			}
			if t.Prov != nil {
				note = fmt.Sprintf("seed=%d budget=%d from %s (%dn)",
					t.Prov.Seed, t.Prov.Budget, t.Prov.SeedTest, t.Prov.SeedLength)
			}
			fmt.Fprintf(stdout, "%-14s %5s  %-10s %s\n", t.Name, t.Complexity(), origin, note)
		}

	case *classes:
		fmt.Fprintln(stdout, "single-cell static fault models:")
		for _, c := range fp.Classes() {
			if c.IsCoupling() {
				continue
			}
			fmt.Fprintf(stdout, "  %-5s %d primitives, e.g. %s\n", c, len(fp.ByClass(c)), fp.ByClass(c)[0])
		}
		fmt.Fprintln(stdout, "two-cell (coupling) static fault models:")
		for _, c := range fp.Classes() {
			if !c.IsCoupling() {
				continue
			}
			fmt.Fprintf(stdout, "  %-5s %d primitives, e.g. %s\n", c, len(fp.ByClass(c)), fp.ByClass(c)[0])
		}

	case *class != "":
		c, err := fp.ParseClass(*class)
		if err != nil {
			fmt.Fprintln(stderr, "faultls:", err)
			return exitUsage
		}
		for _, f := range fp.ByClass(c) {
			fmt.Fprintln(stdout, f.ID())
		}

	case *list != "":
		faults, ok := faultlist.ByName(*list)
		if !ok {
			fmt.Fprintf(stderr, "faultls: unknown fault list %q (known: %v)\n", *list, faultlist.Names())
			return exitUsage
		}
		if *summary {
			counts := map[linked.Kind]int{}
			for _, f := range faults {
				counts[f.Kind]++
			}
			total := 0
			for _, k := range []linked.Kind{linked.Simple, linked.LF1, linked.LF2aa, linked.LF2av, linked.LF2va, linked.LF3} {
				if counts[k] > 0 {
					fmt.Fprintf(stdout, "  %-6s %d\n", k, counts[k])
					total += counts[k]
				}
			}
			fmt.Fprintf(stdout, "  total  %d\n", total)
			return exitOK
		}
		for _, f := range faults {
			fmt.Fprintln(stdout, f.ID())
		}

	default:
		fs.Usage()
		return exitUsage
	}
	return exitOK
}
