// Command faultls explores the fault model space: the static fault
// primitive catalog, the linked fault taxonomy, and the paper's fault lists.
//
// Usage:
//
//	faultls -classes              # the functional fault model classes
//	faultls -class CFds           # the primitives of one class
//	faultls -list list2           # the faults of a list
//	faultls -list list1 -summary  # per-kind counts only
package main

import (
	"flag"
	"fmt"
	"os"

	"marchgen/internal/defect"
	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
)

func main() {
	var (
		classes = flag.Bool("classes", false, "list the functional fault model classes")
		class   = flag.String("class", "", "list the fault primitives of one class (e.g. TF, CFds)")
		list    = flag.String("list", "", "list the faults of a fault list (list1, list2, simple, ...)")
		summary = flag.Bool("summary", false, "with -list: print per-kind counts only")
		defects = flag.Bool("defects", false, "list the physical defect classes and their fault mappings")
	)
	flag.Parse()

	switch {
	case *defects:
		for _, k := range defect.Kinds() {
			d := defect.Defect{Kind: k}
			fmt.Printf("%s:\n", d)
			for _, f := range d.FaultPrimitives() {
				fmt.Printf("  %s\n", f.ID())
			}
		}

	case *classes:
		fmt.Println("single-cell static fault models:")
		for _, c := range fp.Classes() {
			if c.IsCoupling() {
				continue
			}
			fmt.Printf("  %-5s %d primitives, e.g. %s\n", c, len(fp.ByClass(c)), fp.ByClass(c)[0])
		}
		fmt.Println("two-cell (coupling) static fault models:")
		for _, c := range fp.Classes() {
			if !c.IsCoupling() {
				continue
			}
			fmt.Printf("  %-5s %d primitives, e.g. %s\n", c, len(fp.ByClass(c)), fp.ByClass(c)[0])
		}

	case *class != "":
		c, err := fp.ParseClass(*class)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultls:", err)
			os.Exit(2)
		}
		for _, f := range fp.ByClass(c) {
			fmt.Println(f.ID())
		}

	case *list != "":
		faults, ok := faultlist.ByName(*list)
		if !ok {
			fmt.Fprintf(os.Stderr, "faultls: unknown fault list %q (known: %v)\n", *list, faultlist.Names())
			os.Exit(2)
		}
		if *summary {
			counts := map[linked.Kind]int{}
			for _, f := range faults {
				counts[f.Kind]++
			}
			total := 0
			for _, k := range []linked.Kind{linked.Simple, linked.LF1, linked.LF2aa, linked.LF2av, linked.LF2va, linked.LF3} {
				if counts[k] > 0 {
					fmt.Printf("  %-6s %d\n", k, counts[k])
					total += counts[k]
				}
			}
			fmt.Printf("  total  %d\n", total)
			return
		}
		for _, f := range faults {
			fmt.Println(f.ID())
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}
