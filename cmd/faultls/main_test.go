package main

import (
	"bytes"
	"strings"
	"testing"

	"marchgen/internal/march"
)

func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestVersion(t *testing.T) {
	code, out, _ := runCmd("-version")
	if code != exitOK || !strings.HasPrefix(out, "faultls ") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestNoArgsIsUsageError(t *testing.T) {
	if code, _, _ := runCmd(); code != exitUsage {
		t.Fatalf("exit = %d, want %d", code, exitUsage)
	}
}

func TestClasses(t *testing.T) {
	code, out, _ := runCmd("-classes")
	if code != exitOK {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{
		"single-cell static fault models:",
		"two-cell (coupling) static fault models:",
		"TF", "CFds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestClassPrimitives(t *testing.T) {
	code, out, _ := runCmd("-class", "TF")
	if code != exitOK {
		t.Fatalf("exit = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 { // TF has exactly two primitives: <0w1;0/0/-> and <1w0;1/1/->
		t.Fatalf("TF primitives = %d:\n%s", len(lines), out)
	}
	if code, _, stderr := runCmd("-class", "NOPE"); code != exitUsage || !strings.Contains(stderr, "faultls:") {
		t.Fatalf("bad class: code=%d stderr=%q", code, stderr)
	}
}

func TestListAndSummary(t *testing.T) {
	code, out, _ := runCmd("-list", "list2")
	if code != exitOK {
		t.Fatalf("exit = %d", code)
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 18 {
		t.Fatalf("list2 faults = %d, want 18:\n%s", got, out)
	}

	code, sum, _ := runCmd("-list", "list2", "-summary")
	if code != exitOK {
		t.Fatalf("summary exit = %d", code)
	}
	if !strings.Contains(sum, "total  18") {
		t.Fatalf("summary:\n%s", sum)
	}

	if code, _, stderr := runCmd("-list", "nope"); code != exitUsage || !strings.Contains(stderr, "unknown fault list") {
		t.Fatalf("bad list: code=%d stderr=%q", code, stderr)
	}
}

func TestMarches(t *testing.T) {
	// A registered optimizer test must show up with its provenance line.
	reg := march.MustParse("opt-faultls-test", "c(w0) ^(r0,w1) v(r1)")
	reg.Origin = march.OriginOptimized
	reg.Prov = &march.Provenance{Seed: 7, Budget: 50, SeedTest: "seed", SeedLength: 9}
	march.Register(reg)

	code, out, _ := runCmd("-marches")
	if code != exitOK {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{
		"March ABL", "37n", "paper", "Benso et al., DATE 2006",
		"(reconstructed)",
		"opt-faultls-test", "optimized", "seed=7 budget=50 from seed (9n)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDefects(t *testing.T) {
	code, out, _ := runCmd("-defects")
	if code != exitOK || !strings.Contains(out, ":") {
		t.Fatalf("code=%d out:\n%s", code, out)
	}
}
