package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// The workload classes. cachehit and verify run against fixed request
// bodies that the harness prewarms, so after setup they exercise the
// cache-hit fast path (never admission-controlled — the degrade contract
// says they stay green under overload). cold generates a unique options
// name per request, so every one is a genuine cache miss competing for the
// worker pool; simulate is the synchronous path.
const (
	classCacheHit = "cachehit"
	classCold     = "cold"
	classSimulate = "simulate"
	classVerify   = "verify"
)

const (
	cacheHitBody = `{"list":"list2"}`
	simulateBody = `{"march":{"name":"MATS+"},"list":"list2"}`
	verifyBody   = `{"march":{"name":"March SL"},"list":"list2"}`
)

// outcome classifies one operation.
type outcome int

const (
	outSuccess    outcome = iota
	outShed               // HTTP 429: the admission controller refused
	outError              // transport error, unexpected status, failed job
	outIncomplete         // the run or op deadline expired while polling
)

// collector aggregates worker observations.
type collector struct {
	mu      sync.Mutex
	counts  map[string]*classCounts
	healthz map[string]int64
	reasons []string
}

type classCounts struct {
	requests, success, shed, errors, incomplete int64
	latencyMS                                   []float64
}

func newCollector() *collector {
	return &collector{counts: make(map[string]*classCounts), healthz: make(map[string]int64)}
}

func (c *collector) record(class string, out outcome, elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cc := c.counts[class]
	if cc == nil {
		cc = &classCounts{}
		c.counts[class] = cc
	}
	cc.requests++
	switch out {
	case outSuccess:
		cc.success++
		cc.latencyMS = append(cc.latencyMS, float64(elapsed)/float64(time.Millisecond))
	case outShed:
		cc.shed++
	case outError:
		cc.errors++
	case outIncomplete:
		cc.incomplete++
	}
}

func (c *collector) health(status string, reasons []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.healthz[status]++
	if len(reasons) > 0 {
		c.reasons = reasons
	}
}

// drive runs the configured load against cfg.addr and returns the report.
func drive(cfg harnessConfig) (*loadReport, error) {
	hc := &http.Client{Timeout: cfg.opTimeout}
	if err := prewarm(hc, cfg.addr, cfg.opTimeout); err != nil {
		return nil, fmt.Errorf("prewarm: %w", err)
	}

	col := newCollector()
	stop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		sampleHealthz(hc, cfg.addr, col, stop)
	}()

	// Weighted class schedule: a flat slice the workers index with their rng.
	var schedule []string
	for _, class := range []string{classCacheHit, classCold, classSimulate, classVerify} {
		for i := 0; i < cfg.mix[class]; i++ {
			schedule = append(schedule, class)
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			for n := 0; time.Now().Before(deadline); n++ {
				class := schedule[rng.Intn(len(schedule))]
				out, elapsed := runOp(hc, cfg, class, w, n, deadline)
				col.record(class, out, elapsed)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	samplerWG.Wait()

	report := buildReport(cfg, col, elapsed)
	if cfg.allocSample > 0 {
		allocs, err := sampleAllocs(hc, cfg.addr, cfg.allocSample)
		if err != nil {
			return nil, fmt.Errorf("alloc sample: %w", err)
		}
		report.AllocsPerCachedHit = &allocs
	}
	return report, nil
}

// prewarm computes the fixed cachehit and verify documents once, so the
// measured run hits the cache. Failing to warm up is a setup error, not a
// load observation.
func prewarm(hc *http.Client, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, op := range []struct{ path, body string }{
		{"/v1/generate", cacheHitBody},
		{"/v1/verify", verifyBody},
	} {
		status, resp, err := postJSON(hc, addr+op.path, op.body)
		if err != nil {
			return err
		}
		switch status {
		case http.StatusOK:
			continue
		case http.StatusAccepted:
			if err := pollJob(hc, addr, resp, deadline); err != nil {
				return fmt.Errorf("POST %s: %w", op.path, err)
			}
		default:
			return fmt.Errorf("POST %s: HTTP %d", op.path, status)
		}
	}
	return nil
}

// runOp performs one operation of the class and classifies the outcome.
func runOp(hc *http.Client, cfg harnessConfig, class string, worker, n int, runDeadline time.Time) (outcome, time.Duration) {
	opDeadline := time.Now().Add(cfg.opTimeout)
	// Polling past the end of the run would smear the measurement window;
	// allow a short grace beyond it and classify the rest as incomplete.
	if grace := runDeadline.Add(2 * time.Second); opDeadline.After(grace) {
		opDeadline = grace
	}
	start := time.Now()
	var status int
	var body []byte
	var err error
	switch class {
	case classCacheHit:
		status, body, err = postJSON(hc, cfg.addr+"/v1/generate", cacheHitBody)
	case classCold:
		req := fmt.Sprintf(`{"list":%q,"options":{"name":"cold-%d-%d"}}`, cfg.coldList, worker, n)
		status, body, err = postJSON(hc, cfg.addr+"/v1/generate", req)
	case classSimulate:
		status, body, err = postJSON(hc, cfg.addr+"/v1/simulate", simulateBody)
	case classVerify:
		status, body, err = postJSON(hc, cfg.addr+"/v1/verify", verifyBody)
	}
	if err != nil {
		return outError, 0
	}
	switch status {
	case http.StatusOK:
		return outSuccess, time.Since(start)
	case http.StatusTooManyRequests:
		return outShed, 0
	case http.StatusAccepted:
		switch perr := pollJob(hc, cfg.addr, body, opDeadline); {
		case perr == nil:
			return outSuccess, time.Since(start)
		case perr == errPollDeadline:
			return outIncomplete, 0
		default:
			return outError, 0
		}
	default:
		return outError, 0
	}
}

var errPollDeadline = fmt.Errorf("poll deadline expired")

// pollJob follows a 202 submit answer ({"job":...,"poll":...}) until the
// job reaches a terminal state. An expired deadline cancels the job
// best-effort (exercising DELETE under load) and reports errPollDeadline.
func pollJob(hc *http.Client, addr string, submitBody []byte, deadline time.Time) error {
	var accepted struct {
		Poll string `json:"poll"`
	}
	if err := json.Unmarshal(submitBody, &accepted); err != nil || accepted.Poll == "" {
		return fmt.Errorf("bad submit answer: %s", truncate(submitBody))
	}
	for {
		if !time.Now().Before(deadline) {
			req, _ := http.NewRequest(http.MethodDelete, addr+accepted.Poll, nil)
			if resp, err := hc.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			return errPollDeadline
		}
		resp, err := hc.Get(addr + accepted.Poll)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: HTTP %d", accepted.Poll, resp.StatusCode)
		}
		var j struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(data, &j); err != nil {
			return err
		}
		switch j.Status {
		case "done":
			return nil
		case "failed", "canceled":
			return fmt.Errorf("job %s: %s", j.Status, j.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sampleHealthz polls GET /healthz until stop closes, counting the
// degrade-ladder levels the run observed.
func sampleHealthz(hc *http.Client, addr string, col *collector, stop chan struct{}) {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			var h struct {
				Status  string   `json:"status"`
				Reasons []string `json:"reasons"`
			}
			if err := getJSON(hc, addr+"/healthz", &h); err == nil && h.Status != "" {
				col.health(h.Status, h.Reasons)
			}
		}
	}
}

// sampleAllocs measures server-side allocations per cached hit: the
// /metrics runtime mallocs delta across n back-to-back cache-hit requests.
// The figure includes the full per-request HTTP machinery; the BENCH
// report tracks its trend, while the zero-allocation claim for the verdict
// bytes themselves is pinned by a testing.AllocsPerRun unit test in
// internal/service.
func sampleAllocs(hc *http.Client, addr string, n int) (float64, error) {
	before, err := metricsMallocs(hc, addr)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		status, _, err := postJSON(hc, addr+"/v1/generate", cacheHitBody)
		if err != nil {
			return 0, err
		}
		if status != http.StatusOK {
			return 0, fmt.Errorf("cache hit %d answered HTTP %d", i, status)
		}
	}
	after, err := metricsMallocs(hc, addr)
	if err != nil {
		return 0, err
	}
	if after < before {
		return 0, fmt.Errorf("mallocs went backward (%d -> %d)", before, after)
	}
	return float64(after-before) / float64(n), nil
}

func metricsMallocs(hc *http.Client, addr string) (uint64, error) {
	var m struct {
		Runtime struct {
			Mallocs uint64 `json:"mallocs"`
		} `json:"runtime"`
	}
	if err := getJSON(hc, addr+"/metrics", &m); err != nil {
		return 0, err
	}
	return m.Runtime.Mallocs, nil
}

func postJSON(hc *http.Client, url, body string) (int, []byte, error) {
	resp, err := hc.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

func getJSON(hc *http.Client, url string, v any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.Unmarshal(data, v)
}

func truncate(b []byte) string {
	s := string(b)
	if len(s) > 120 {
		s = s[:120] + "..."
	}
	return s
}
