package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("cachehit=8, cold=1,simulate=0,verify=2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"cachehit": 8, "cold": 1, "simulate": 0, "verify": 2}
	for k, v := range want {
		if mix[k] != v {
			t.Fatalf("mix[%s] = %d, want %d", k, mix[k], v)
		}
	}
	for _, bad := range []string{"cachehit", "cachehit=-1", "warm=3", "cachehit=0,cold=0", ""} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}

func TestParseClassFloors(t *testing.T) {
	floors, err := parseClassFloors("cachehit=0.99,simulate=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if floors["cachehit"] != 0.99 || floors["simulate"] != 0.5 {
		t.Fatalf("floors = %v", floors)
	}
	if f, err := parseClassFloors(""); err != nil || f != nil {
		t.Fatalf("empty spec: %v %v", f, err)
	}
	for _, bad := range []string{"cachehit=1.5", "cachehit=-0.1", "cachehit", "cachehit=x"} {
		if _, err := parseClassFloors(bad); err == nil {
			t.Fatalf("parseClassFloors(%q) accepted", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{0.5, 5}, {0.99, 10}, {0.1, 1}, {1, 10}} {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Fatalf("percentile(%.2f) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("percentile(empty) = %v", got)
	}
}

// TestGateEvaluation exercises the SLO gate logic on synthetic reports —
// no server needed.
func TestGateEvaluation(t *testing.T) {
	mk := func(shed int64, cachedP99 float64) *loadReport {
		r := &loadReport{Classes: map[string]classReport{
			classCacheHit: {Requests: 100, Success: 99, Errors: 1, P99ms: cachedP99},
			classCold:     {Requests: 50, Success: 10, Shed: shed, Incomplete: 2},
		}}
		r.Totals.Shed = shed
		return r
	}
	find := func(r *loadReport, name string) gateResult {
		for _, g := range r.Gates {
			if g.Name == name {
				return g
			}
		}
		t.Fatalf("gate %s missing from %+v", name, r.Gates)
		return gateResult{}
	}

	r := mk(5, 10)
	r.evaluateGates(harnessConfig{maxShed: 0, minShed: -1})
	if g := find(r, "max-shed"); g.OK {
		t.Fatalf("max-shed 0 with 5 sheds passed: %+v", g)
	}
	r = mk(5, 10)
	r.evaluateGates(harnessConfig{maxShed: -1, minShed: 1})
	if g := find(r, "min-shed"); !g.OK {
		t.Fatalf("min-shed 1 with 5 sheds failed: %+v", g)
	}
	r = mk(0, 10)
	r.evaluateGates(harnessConfig{maxShed: -1, minShed: 1})
	if g := find(r, "min-shed"); g.OK {
		t.Fatalf("min-shed 1 with 0 sheds passed: %+v", g)
	}

	// Success ratio excludes sheds and incompletes: cold did 50 requests but
	// only 50-38-2=10 were eligible, all successful.
	r = mk(38, 10)
	r.evaluateGates(harnessConfig{maxShed: -1, minShed: -1,
		minClassSuccess: map[string]float64{classCold: 1.0, classCacheHit: 0.995}})
	if g := find(r, "min-class-success:cold"); !g.OK {
		t.Fatalf("cold ratio should be 1.0: %+v", g)
	}
	if g := find(r, "min-class-success:cachehit"); g.OK {
		t.Fatalf("cachehit ratio 0.99 above floor 0.995: %+v", g)
	}
}

func TestBaselineRatioGate(t *testing.T) {
	dir := t.TempDir()
	base := &loadReport{Classes: map[string]classReport{classCacheHit: {P99ms: 40}}}
	data, _ := json.Marshal(base)
	path := filepath.Join(dir, "base.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := harnessConfig{maxShed: -1, minShed: -1, baseline: path,
		maxCachedRatio: 2, cachedFloor: 25 * time.Millisecond}

	r := &loadReport{Classes: map[string]classReport{classCacheHit: {P99ms: 79}}}
	r.evaluateGates(cfg)
	if !r.Gates[0].OK {
		t.Fatalf("p99 79ms within 2x of 40ms failed: %+v", r.Gates[0])
	}
	r = &loadReport{Classes: map[string]classReport{classCacheHit: {P99ms: 81}}}
	r.evaluateGates(cfg)
	if r.Gates[0].OK {
		t.Fatalf("p99 81ms above 2x of 40ms passed: %+v", r.Gates[0])
	}
	// A fast baseline pulls the cap below the absolute floor; the floor wins
	// (sub-25ms p99 jitter is noise, not regression).
	base = &loadReport{Classes: map[string]classReport{classCacheHit: {P99ms: 1}}}
	data, _ = json.Marshal(base)
	os.WriteFile(path, data, 0o644)
	r = &loadReport{Classes: map[string]classReport{classCacheHit: {P99ms: 20}}}
	r.evaluateGates(cfg)
	if !r.Gates[0].OK {
		t.Fatalf("p99 20ms under the 25ms floor failed: %+v", r.Gates[0])
	}
	// A missing baseline is a gate failure, not a silent pass.
	cfg.baseline = filepath.Join(dir, "nope.json")
	r = &loadReport{Classes: map[string]classReport{classCacheHit: {P99ms: 1}}}
	r.evaluateGates(cfg)
	if r.Gates[0].OK {
		t.Fatal("missing baseline passed the ratio gate")
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                  // no -addr, no -selfserve
		{"-addr", "http://x", "-selfserve"}, // both
		{"-selfserve", "-mix", "bogus=1"},
		{"-selfserve", "-min-class-success", "cachehit=2"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != exitUsage {
			t.Fatalf("run(%v) = %d, want %d (stderr: %s)", args, code, exitUsage, errb.String())
		}
	}
}

// TestSelfserveNominalRun drives a short real run against an in-process
// marchd: no sheds at nominal load, a well-formed report on disk, and the
// alloc sample present.
func TestSelfserveNominalRun(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real load for a second")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-selfserve", "-duration", "1s", "-concurrency", "4",
		"-mix", "cachehit=8,simulate=2,verify=1", // no cold: nominal stays cheap
		"-alloc-sample", "100", "-max-shed", "0", "-min-class-success", "cachehit=0.99",
		"-out", out,
	}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var r loadReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("bad report: %v", err)
	}
	if r.Totals.Requests == 0 || r.Totals.Shed != 0 {
		t.Fatalf("totals = %+v", r.Totals)
	}
	hit := r.Classes[classCacheHit]
	if hit.Success == 0 || hit.P99ms <= 0 {
		t.Fatalf("cachehit = %+v", hit)
	}
	if r.AllocsPerCachedHit == nil || *r.AllocsPerCachedHit <= 0 {
		t.Fatalf("allocs_per_cached_hit = %v", r.AllocsPerCachedHit)
	}
	if r.Healthz["ok"] == 0 {
		t.Fatalf("healthz samples = %v", r.Healthz)
	}
	for _, g := range r.Gates {
		if !g.OK {
			t.Fatalf("gate %s failed at nominal load: %s", g.Name, g.Detail)
		}
	}
}

// TestSelfserveOverloadSheds drives 5x-style overload against a tiny
// server and asserts the degrade contract: cold generates shed with 429s
// while the cache-hit class stays fully green.
func TestSelfserveOverloadSheds(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real load for a couple of seconds")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-selfserve", "-workers", "2", "-queue", "4",
		"-admit-target", "25ms", "-admit-interval", "200ms",
		"-duration", "2s", "-concurrency", "16",
		"-mix", "cachehit=8,cold=6,simulate=2,verify=1",
		"-min-shed", "1", "-min-class-success", "cachehit=0.99",
		"-out", out,
	}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	var r loadReport
	data, _ := os.ReadFile(out)
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("bad report: %v", err)
	}
	if r.Totals.Shed == 0 {
		t.Fatal("overload run shed nothing")
	}
	hit := r.Classes[classCacheHit]
	if hit.Shed != 0 {
		t.Fatalf("cache hits were shed under overload: %+v", hit)
	}
	if hit.Requests == 0 || hit.Success != hit.Requests {
		t.Fatalf("cache hits not fully green: %+v", hit)
	}
}
