package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// classReport is the per-class section of the load report. Success ratios
// exclude sheds and incompletes: a 429 is the server doing its job, not
// the class failing, and an op the run clock cut off proves nothing.
type classReport struct {
	Requests   int64 `json:"requests"`
	Success    int64 `json:"success"`
	Shed       int64 `json:"shed"`
	Errors     int64 `json:"errors"`
	Incomplete int64 `json:"incomplete"`

	P50ms  float64 `json:"p50_ms"`
	P99ms  float64 `json:"p99_ms"`
	P999ms float64 `json:"p999_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// successRatio is success / (requests - shed - incomplete).
func (c classReport) successRatio() float64 {
	denom := c.Requests - c.Shed - c.Incomplete
	if denom <= 0 {
		return 0
	}
	return float64(c.Success) / float64(denom)
}

type gateResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// loadReport is the BENCH_serve.json document.
type loadReport struct {
	GeneratedAt string       `json:"generated_at"`
	Target      string       `json:"target"`
	Config      reportConfig `json:"config"`

	DurationSeconds float64 `json:"duration_seconds"`

	Totals struct {
		Requests   int64   `json:"requests"`
		Success    int64   `json:"success"`
		Shed       int64   `json:"shed"`
		Errors     int64   `json:"errors"`
		Incomplete int64   `json:"incomplete"`
		RPS        float64 `json:"rps"`
	} `json:"totals"`

	Classes map[string]classReport `json:"classes"`

	// AllocsPerCachedHit is the server-side mallocs delta per back-to-back
	// cache-hit request (nil when -alloc-sample is 0).
	AllocsPerCachedHit *float64 `json:"allocs_per_cached_hit,omitempty"`

	// Healthz counts the degrade-ladder levels GET /healthz reported while
	// the load ran; Reasons is the last non-empty reason list observed.
	Healthz        map[string]int64 `json:"healthz_samples"`
	HealthzReasons []string         `json:"healthz_reasons,omitempty"`

	Gates []gateResult `json:"gates"`
}

type reportConfig struct {
	Concurrency int            `json:"concurrency"`
	Duration    string         `json:"duration"`
	Mix         map[string]int `json:"mix"`
	ColdList    string         `json:"cold_list"`
	Seed        int64          `json:"seed"`
	Selfserve   bool           `json:"selfserve"`
	Workers     int            `json:"workers,omitempty"`
	Queue       int            `json:"queue,omitempty"`
}

func buildReport(cfg harnessConfig, col *collector, elapsed time.Duration) *loadReport {
	col.mu.Lock()
	defer col.mu.Unlock()
	r := &loadReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Target:      cfg.addr,
		Config: reportConfig{
			Concurrency: cfg.concurrency,
			Duration:    cfg.duration.String(),
			Mix:         cfg.mix,
			ColdList:    cfg.coldList,
			Seed:        cfg.seed,
			Selfserve:   cfg.selfserve,
		},
		DurationSeconds: elapsed.Seconds(),
		Classes:         make(map[string]classReport, len(col.counts)),
		Healthz:         col.healthz,
		HealthzReasons:  col.reasons,
	}
	if cfg.selfserve {
		r.Target = "selfserve"
		r.Config.Workers = cfg.workers
		r.Config.Queue = cfg.queue
	}
	for class, cc := range col.counts {
		cr := summarize(cc.latencyMS)
		cr.Requests = cc.requests
		cr.Success = cc.success
		cr.Shed = cc.shed
		cr.Errors = cc.errors
		cr.Incomplete = cc.incomplete
		r.Classes[class] = cr
		r.Totals.Requests += cc.requests
		r.Totals.Success += cc.success
		r.Totals.Shed += cc.shed
		r.Totals.Errors += cc.errors
		r.Totals.Incomplete += cc.incomplete
	}
	if elapsed > 0 {
		r.Totals.RPS = float64(r.Totals.Requests) / elapsed.Seconds()
	}
	return r
}

// evaluateGates appends the configured SLO gate verdicts to the report.
func (r *loadReport) evaluateGates(cfg harnessConfig) {
	gate := func(name string, ok bool, format string, args ...any) {
		r.Gates = append(r.Gates, gateResult{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	}
	if cfg.maxShed >= 0 {
		gate("max-shed", r.Totals.Shed <= cfg.maxShed,
			"%d sheds observed, cap %d", r.Totals.Shed, cfg.maxShed)
	}
	if cfg.minShed >= 0 {
		gate("min-shed", r.Totals.Shed >= cfg.minShed,
			"%d sheds observed, floor %d", r.Totals.Shed, cfg.minShed)
	}
	for _, class := range []string{classCacheHit, classCold, classSimulate, classVerify} {
		floor, ok := cfg.minClassSuccess[class]
		if !ok {
			continue
		}
		cr := r.Classes[class]
		ratio := cr.successRatio()
		gate("min-class-success:"+class, ratio >= floor,
			"success ratio %.4f (success %d of %d eligible), floor %.4f",
			ratio, cr.Success, cr.Requests-cr.Shed-cr.Incomplete, floor)
	}
	if cfg.maxCachedRatio > 0 && cfg.baseline != "" {
		base, err := readBaselineCachedP99(cfg.baseline)
		switch {
		case err != nil:
			gate("cached-p99-ratio", false, "baseline %s: %v", cfg.baseline, err)
		default:
			cur := r.Classes[classCacheHit].P99ms
			cap := base * cfg.maxCachedRatio
			floorMS := float64(cfg.cachedFloor) / float64(time.Millisecond)
			if cap < floorMS {
				cap = floorMS
			}
			gate("cached-p99-ratio", cur <= cap,
				"cachehit p99 %.2fms vs baseline %.2fms: cap %.2fms (ratio %.1f, floor %s)",
				cur, base, cap, cfg.maxCachedRatio, cfg.cachedFloor)
		}
	}
}

// readBaselineCachedP99 pulls the cachehit p99 out of a previous report.
func readBaselineCachedP99(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var base loadReport
	if err := json.Unmarshal(data, &base); err != nil {
		return 0, fmt.Errorf("bad baseline report: %v", err)
	}
	cr, ok := base.Classes[classCacheHit]
	if !ok {
		return 0, fmt.Errorf("baseline report has no %q class", classCacheHit)
	}
	return cr.P99ms, nil
}
