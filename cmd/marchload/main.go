// Command marchload is the repo-native load harness for marchd: it drives
// a mixed workload (cache-hit generates, cold generates, simulations,
// verifications) at a configurable concurrency and mix, measures per-class
// latency percentiles and shed/error counts, and evaluates SLO gates on
// the result — exit status 1 means a gate failed, so `make load-test` can
// pin the overload contract in CI.
//
// Two ways to point it at a server:
//
//	marchload -selfserve -duration 5s -concurrency 8
//	marchload -addr http://127.0.0.1:8080 -duration 30s
//
// -selfserve starts an in-process marchd (sized by -workers/-queue/
// -admit-target/-admit-interval) on a loopback port, which makes the
// harness self-contained for CI: no daemon management, no port juggling.
//
// The report lands as JSON (BENCH_serve.json by convention, see -out):
// per-class p50/p99/p999, request totals, shed counts, healthz samples
// observed during the run, and allocs-per-cached-hit derived from the
// server's /metrics runtime sample across -alloc-sample back-to-back hits.
//
// Gates (all optional; violated gates are listed in the report):
//
//	-max-shed N                fail when total 429 sheds exceed N
//	-min-shed N                fail when total 429 sheds fall below N
//	                           (the overload run proves shedding happens)
//	-min-class-success SPEC    per-class success-ratio floors, e.g.
//	                           "cachehit=0.99,simulate=0.9"
//	-max-cached-p99-ratio R    with -baseline FILE: fail when this run's
//	                           cachehit p99 exceeds R × the baseline's,
//	                           below a -cached-p99-floor absolute grace
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"marchgen/internal/service"
)

const (
	exitOK    = 0
	exitGate  = 1
	exitUsage = 2
	exitSetup = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// harnessConfig is the parsed flag set.
type harnessConfig struct {
	addr        string
	selfserve   bool
	workers     int
	queue       int
	admitTarget time.Duration
	admitIvl    time.Duration

	duration    time.Duration
	concurrency int
	mix         map[string]int
	mixSpec     string
	coldList    string
	opTimeout   time.Duration
	seed        int64

	out         string
	baseline    string
	allocSample int

	maxShed         int64
	minShed         int64
	minClassSuccess map[string]float64
	maxCachedRatio  float64
	cachedFloor     time.Duration
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg harnessConfig
	fs.StringVar(&cfg.addr, "addr", "", "target marchd base URL (empty with -selfserve)")
	fs.BoolVar(&cfg.selfserve, "selfserve", false, "start an in-process marchd on a loopback port")
	fs.IntVar(&cfg.workers, "workers", 2, "selfserve: generation worker pool size")
	fs.IntVar(&cfg.queue, "queue", 8, "selfserve: job queue depth")
	fs.DurationVar(&cfg.admitTarget, "admit-target", 50*time.Millisecond, "selfserve: CoDel queue-wait target")
	fs.DurationVar(&cfg.admitIvl, "admit-interval", 250*time.Millisecond, "selfserve: CoDel observation interval")
	fs.DurationVar(&cfg.duration, "duration", 5*time.Second, "how long to drive load")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "concurrent load workers")
	fs.StringVar(&cfg.mixSpec, "mix", "cachehit=8,cold=1,simulate=2,verify=1", "workload mix as class=weight pairs")
	fs.StringVar(&cfg.coldList, "cold-list", "list1", "fault list the cold-generate class requests")
	fs.DurationVar(&cfg.opTimeout, "op-timeout", 10*time.Second, "per-operation deadline (submit + poll)")
	fs.Int64Var(&cfg.seed, "seed", 1, "rng seed for the workload mix")
	fs.StringVar(&cfg.out, "out", "", "write the JSON report here (e.g. BENCH_serve.json)")
	fs.StringVar(&cfg.baseline, "baseline", "", "baseline report for the cached-p99 ratio gate")
	fs.IntVar(&cfg.allocSample, "alloc-sample", 0, "sample allocs-per-cached-hit over N back-to-back hits")
	fs.Int64Var(&cfg.maxShed, "max-shed", -1, "gate: fail when total sheds exceed this (-1 disables)")
	fs.Int64Var(&cfg.minShed, "min-shed", -1, "gate: fail when total sheds fall below this (-1 disables)")
	minSuccessSpec := fs.String("min-class-success", "", "gate: per-class success-ratio floors, e.g. \"cachehit=0.99\"")
	fs.Float64Var(&cfg.maxCachedRatio, "max-cached-p99-ratio", 0, "gate: cachehit p99 vs -baseline ratio cap (0 disables)")
	fs.DurationVar(&cfg.cachedFloor, "cached-p99-floor", 25*time.Millisecond, "absolute cachehit-p99 grace below which the ratio gate passes")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	var err error
	if cfg.mix, err = parseMix(cfg.mixSpec); err != nil {
		fmt.Fprintf(stderr, "marchload: %v\n", err)
		return exitUsage
	}
	if cfg.minClassSuccess, err = parseClassFloors(*minSuccessSpec); err != nil {
		fmt.Fprintf(stderr, "marchload: %v\n", err)
		return exitUsage
	}
	if cfg.addr == "" && !cfg.selfserve {
		fmt.Fprintln(stderr, "marchload: set -addr or -selfserve")
		return exitUsage
	}
	if cfg.addr != "" && cfg.selfserve {
		fmt.Fprintln(stderr, "marchload: -addr and -selfserve are mutually exclusive")
		return exitUsage
	}

	var shutdown func()
	if cfg.selfserve {
		addr, stop, err := startSelfserve(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "marchload: selfserve: %v\n", err)
			return exitSetup
		}
		cfg.addr = addr
		shutdown = stop
	}
	cfg.addr = strings.TrimRight(cfg.addr, "/")
	if shutdown != nil {
		defer shutdown()
	}

	report, err := drive(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "marchload: %v\n", err)
		return exitSetup
	}
	report.evaluateGates(cfg)

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "marchload: encode report: %v\n", err)
		return exitSetup
	}
	doc = append(doc, '\n')
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, doc, 0o644); err != nil {
			fmt.Fprintf(stderr, "marchload: %v\n", err)
			return exitSetup
		}
	}
	stdout.Write(doc)
	for _, g := range report.Gates {
		if !g.OK {
			fmt.Fprintf(stderr, "marchload: gate failed: %s: %s\n", g.Name, g.Detail)
		}
	}
	for _, g := range report.Gates {
		if !g.OK {
			return exitGate
		}
	}
	return exitOK
}

// startSelfserve boots an in-process marchd on a loopback port and returns
// its base URL plus a shutdown func.
func startSelfserve(cfg harnessConfig) (string, func(), error) {
	dataDir, err := os.MkdirTemp("", "marchload-*")
	if err != nil {
		return "", nil, err
	}
	svc := service.New(service.Config{
		Workers:       cfg.workers,
		QueueDepth:    cfg.queue,
		AdmitTarget:   cfg.admitTarget,
		AdmitInterval: cfg.admitIvl,
		DataDir:       dataDir,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dataDir)
		return "", nil, err
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		svc.Shutdown(ctx)
		os.RemoveAll(dataDir)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// parseMix parses "cachehit=8,cold=1,simulate=2,verify=1" into weights.
func parseMix(spec string) (map[string]int, error) {
	mix := make(map[string]int)
	total := 0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q: want class=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q: want a non-negative integer", val)
		}
		switch name {
		case classCacheHit, classCold, classSimulate, classVerify:
		default:
			return nil, fmt.Errorf("unknown -mix class %q (want %s|%s|%s|%s)",
				name, classCacheHit, classCold, classSimulate, classVerify)
		}
		mix[name] = w
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("-mix %q selects no work: all weights are zero", spec)
	}
	return mix, nil
}

// parseClassFloors parses "cachehit=0.99,simulate=0.9".
func parseClassFloors(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	floors := make(map[string]float64)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -min-class-success entry %q: want class=ratio", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 || f > 1 {
			return nil, fmt.Errorf("bad -min-class-success ratio %q: want 0..1", val)
		}
		floors[name] = f
	}
	return floors, nil
}

// percentile returns the p-th percentile (0..1) of sorted latencies.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// summarize renders one class's latency sample into the report form.
func summarize(latMS []float64) classReport {
	var r classReport
	if len(latMS) == 0 {
		return r
	}
	sort.Float64s(latMS)
	var sum float64
	for _, v := range latMS {
		sum += v
	}
	r.P50ms = percentile(latMS, 0.50)
	r.P99ms = percentile(latMS, 0.99)
	r.P999ms = percentile(latMS, 0.999)
	r.MeanMS = sum / float64(len(latMS))
	return r
}
