// Command marchgen generates a march test for a target fault list and
// certifies it with the fault simulator — the end-to-end flow of the paper.
//
// Usage:
//
//	marchgen -list list2
//	marchgen -list list1 -aggressive -name "March MINE"
//	marchgen -list list1 -kinds        # per-kind coverage breakdown
//	marchgen -list list2 -verify       # cross-check with the reference oracle
//
// Exit codes (for CI generation gates):
//
//	0  generation succeeded (full coverage certified)
//	1  generation, verification or output error
//	2  usage error (bad flags, unknown fault list or order constraint)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"marchgen"
	"marchgen/internal/buildinfo"
	"marchgen/internal/cliflag"
)

// Exit codes of the marchgen command.
const (
	exitOK    = 0 // generation succeeded
	exitErr   = 1 // generation, verification or output errors
	exitUsage = 2 // flag / fault-list / order errors
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process plumbing factored out so tests can drive
// the command end to end and assert on its exit code and output.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listName   = fs.String("list", "list2", "target fault list (list1, list2, simple, simple1, simple2, realistic1, realistic2, dynamic, dynamic1, dynamic2)")
		name       = fs.String("name", "March GEN", "name for the generated test")
		aggressive = fs.Bool("aggressive", false, "enable the deeper minimization passes (the March RABL profile)")
		orders     = fs.String("orders", "free", "address-order constraint: free, up (all-increasing) or down (all-decreasing)")
		kinds      = fs.Bool("kinds", false, "print per-kind coverage breakdown")
		ascii      = fs.Bool("ascii", false, "print the test with ASCII order markers instead of arrows")
		verify     = fs.Bool("verify", false, "cross-check the certification with the independent reference oracle")
		width      = fs.Int("width", 0, "word width in bits: also grade the test on the intra-word faults of a w-bit word (0/1 = bit-oriented)")
		transp     = fs.Bool("transparent", false, "with -width > 1, also derive and grade the transparent in-field variant")
		ports      = fs.Int("ports", 0, "port count: 2 also grades the lifted test on the two-port weak-fault catalog (0/1 = single-port)")
		asJSON     = fs.Bool("json", false, "emit the generated test and its certification report as JSON")
		lanes      = fs.String("lanes", "on", cliflag.LanesUsage)
		version    = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	lanesOff, lanesErr := cliflag.ParseLanes(*lanes)
	if lanesErr != nil {
		fmt.Fprintln(stderr, "marchgen:", lanesErr)
		return exitUsage
	}
	if *version {
		buildinfo.Fprint(stdout, "marchgen")
		return exitOK
	}

	faults, err := marchgen.FaultListByName(*listName)
	if err != nil {
		fmt.Fprintln(stderr, "marchgen:", err)
		return exitUsage
	}

	constraint, err := marchgen.ParseOrderConstraint(*orders)
	if err != nil {
		fmt.Fprintf(stderr, "marchgen: invalid -orders %q (want free, up or down)\n", *orders)
		return exitUsage
	}

	opts := marchgen.Options{
		Name: *name, Aggressive: *aggressive, Orders: constraint, CertifyWithOracle: *verify,
		Width: *width, Transparent: *transp, Ports: *ports,
	}
	if lanesOff {
		// DisableLanes survives the generator's default-config substitution
		// (it is an execution detail, not a model parameter) but never
		// reaches the canonical JSON form below.
		opts.SearchConfig.DisableLanes = true
		opts.FinalConfig.DisableLanes = true
	}
	res, err := marchgen.Generate(faults, opts)
	if err != nil {
		fmt.Fprintln(stderr, "marchgen:", err)
		return exitErr
	}

	if *asJSON {
		// Options travel in their canonical encoding (stable field order,
		// defaults filled in) — the same form the marchd API and its result
		// cache use.
		out := struct {
			Test    marchgen.March        `json:"test"`
			Report  marchgen.Report       `json:"report"`
			Options marchgen.Options      `json:"options"`
			Word    *marchgen.WordResult  `json:"word,omitempty"`
			Mport   *marchgen.MportResult `json:"mport,omitempty"`
			Seconds float64               `json:"generation_seconds"`
		}{res.Test, res.Report, opts, res.Word, res.Mport, res.Stats.Duration.Seconds()}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "marchgen:", err)
			return exitErr
		}
		return exitOK
	}

	rendered := res.Test.String()
	if *ascii {
		rendered = res.Test.ASCII()
	}
	fmt.Fprintf(stdout, "%s (%s, fault list %s)\n", res.Test.Name, res.Test.Complexity(), *listName)
	fmt.Fprintf(stdout, "  %s\n", rendered)
	fmt.Fprintf(stdout, "coverage: %d/%d faults (%.1f%%)\n", res.Report.Detected(), res.Report.Total(), res.Report.Coverage())
	if *verify {
		fmt.Fprintln(stdout, "oracle cross-check: agreed on every fault")
	}
	if res.Word != nil {
		fmt.Fprintf(stdout, "word (w=%d, %d backgrounds): %d/%d intra-word faults detected\n",
			res.Word.Width, res.Word.Backgrounds, res.Word.Detected, res.Word.Faults)
		if res.Word.Transparent {
			fmt.Fprintf(stdout, "  transparent variant: %s  (%d/%d detected)\n",
				res.Word.TransparentTest, res.Word.TransparentDetected, res.Word.Faults)
		}
	}
	if res.Mport != nil {
		fmt.Fprintf(stdout, "mport (2 ports): lifted test detects %d/%d weak faults; dedicated %s (%d pairs, %d/%d)\n",
			res.Mport.LiftedDetected, res.Mport.Faults, res.Mport.Test,
			res.Mport.TestLength, res.Mport.TestDetected, res.Mport.Faults)
	}
	if *kinds {
		for _, k := range res.Report.ByKind() {
			fmt.Fprintf(stdout, "  %s\n", k)
		}
	}
	fmt.Fprintf(stdout, "generation: %.3f s, %d candidate simulations, %d ops before minimization\n",
		res.Stats.Duration.Seconds(), res.Stats.Simulations, res.Stats.LengthBeforeMinimize)
	return exitOK
}
