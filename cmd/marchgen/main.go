// Command marchgen generates a march test for a target fault list and
// certifies it with the fault simulator — the end-to-end flow of the paper.
//
// Usage:
//
//	marchgen -list list2
//	marchgen -list list1 -aggressive -name "March MINE"
//	marchgen -list list1 -kinds        # per-kind coverage breakdown
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"marchgen"
	"marchgen/internal/buildinfo"
)

func main() {
	var (
		listName   = flag.String("list", "list2", "target fault list (list1, list2, simple, simple1, simple2, realistic1, realistic2, dynamic, dynamic1, dynamic2)")
		name       = flag.String("name", "March GEN", "name for the generated test")
		aggressive = flag.Bool("aggressive", false, "enable the deeper minimization passes (the March RABL profile)")
		orders     = flag.String("orders", "free", "address-order constraint: free, up (all-increasing) or down (all-decreasing)")
		kinds      = flag.Bool("kinds", false, "print per-kind coverage breakdown")
		ascii      = flag.Bool("ascii", false, "print the test with ASCII order markers instead of arrows")
		asJSON     = flag.Bool("json", false, "emit the generated test and its certification report as JSON")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "marchgen")
		return
	}

	faults, err := marchgen.FaultListByName(*listName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchgen:", err)
		os.Exit(2)
	}

	constraint, err := marchgen.ParseOrderConstraint(*orders)
	if err != nil {
		fmt.Fprintf(os.Stderr, "marchgen: invalid -orders %q (want free, up or down)\n", *orders)
		os.Exit(2)
	}

	opts := marchgen.Options{Name: *name, Aggressive: *aggressive, Orders: constraint}
	res, err := marchgen.Generate(faults, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchgen:", err)
		os.Exit(1)
	}

	if *asJSON {
		// Options travel in their canonical encoding (stable field order,
		// defaults filled in) — the same form the marchd API and its result
		// cache use.
		out := struct {
			Test    marchgen.March   `json:"test"`
			Report  marchgen.Report  `json:"report"`
			Options marchgen.Options `json:"options"`
			Seconds float64          `json:"generation_seconds"`
		}{res.Test, res.Report, opts, res.Stats.Duration.Seconds()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "marchgen:", err)
			os.Exit(1)
		}
		return
	}

	rendered := res.Test.String()
	if *ascii {
		rendered = res.Test.ASCII()
	}
	fmt.Printf("%s (%s, fault list %s)\n", res.Test.Name, res.Test.Complexity(), *listName)
	fmt.Printf("  %s\n", rendered)
	fmt.Printf("coverage: %d/%d faults (%.1f%%)\n", res.Report.Detected(), res.Report.Total(), res.Report.Coverage())
	if *kinds {
		for _, k := range res.Report.ByKind() {
			fmt.Printf("  %s\n", k)
		}
	}
	fmt.Printf("generation: %.3f s, %d candidate simulations, %d ops before minimization\n",
		res.Stats.Duration.Seconds(), res.Stats.Simulations, res.Stats.LengthBeforeMinimize)
}
