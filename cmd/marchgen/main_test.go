package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestGenerateList2Text(t *testing.T) {
	code, out, errOut := runCmd(t, "-list", "list2", "-name", "March T", "-verify")
	if code != exitOK {
		t.Fatalf("exit %d; stderr: %s", code, errOut)
	}
	for _, want := range []string{"March T", "coverage: 18/18", "oracle cross-check: agreed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateJSON(t *testing.T) {
	code, out, errOut := runCmd(t, "-list", "list2", "-json")
	if code != exitOK {
		t.Fatalf("exit %d; stderr: %s", code, errOut)
	}
	var doc struct {
		Test struct {
			Name string `json:"name"`
		} `json:"test"`
		Options struct {
			MaxSOLen int `json:"max_so_len"`
		} `json:"options"`
		Seconds float64 `json:"generation_seconds"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("decode %q: %v", out, err)
	}
	if doc.Test.Name != "March GEN" || doc.Options.MaxSOLen != 11 || doc.Seconds <= 0 {
		t.Fatalf("document = %+v", doc)
	}
}

// TestAxisFlags pins the -width/-ports/-transparent wiring: the axis
// sections appear in the text rendering exactly when an axis is requested,
// and out-of-range axes are rejected before generation starts.
func TestAxisFlags(t *testing.T) {
	code, out, errOut := runCmd(t, "-list", "list2", "-width", "4", "-ports", "2")
	if code != exitOK {
		t.Fatalf("exit %d; stderr: %s", code, errOut)
	}
	for _, want := range []string{
		"word (w=4, 3 backgrounds):",
		"mport (2 ports): lifted test detects",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Default invocation must not grow axis lines.
	code, out, _ = runCmd(t, "-list", "list2")
	if code != exitOK || strings.Contains(out, "word (") || strings.Contains(out, "mport (") {
		t.Fatalf("default output grew axis sections (exit %d):\n%s", code, out)
	}

	// list1's generated test admits the transparent variant.
	code, out, errOut = runCmd(t, "-list", "list1", "-width", "4", "-transparent")
	if code != exitOK {
		t.Fatalf("transparent exit %d; stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "transparent variant:") {
		t.Fatalf("no transparent variant line:\n%s", out)
	}

	for _, args := range [][]string{
		{"-list", "list2", "-width", "100"},
		{"-list", "list2", "-ports", "3"},
	} {
		code, _, errOut := runCmd(t, args...)
		if code == exitOK || !strings.Contains(errOut, "out of range") {
			t.Errorf("args %v: exit %d, stderr %q; want an out-of-range rejection", args, code, errOut)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-list", "nope"},
		{"-orders", "sideways"},
		{"-badflag"},
	}
	for _, args := range cases {
		if code, _, _ := runCmd(t, args...); code != exitUsage {
			t.Errorf("args %v: exit %d, want %d", args, code, exitUsage)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	code, out, _ := runCmd(t, "-version")
	if code != exitOK || out == "" {
		t.Fatalf("exit %d, output %q", code, out)
	}
}
