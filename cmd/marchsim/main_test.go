package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// runCmd drives the command as a test would drive the binary, returning
// exit code and captured output.
func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitFullCoverage(t *testing.T) {
	// March SL covers all of list 2; the certification gate passes.
	code, out, _ := runCmd("-march", "March SL", "-list", "list2")
	if code != exitFull {
		t.Fatalf("exit = %d, want %d (full coverage)\n%s", code, exitFull, out)
	}
	if !strings.Contains(out, "100.0%") {
		t.Fatalf("summary missing full coverage: %s", out)
	}
}

func TestExitMissedFaults(t *testing.T) {
	// MATS+ misses static linked faults — the nonzero exit lets CI gates
	// catch certification regressions.
	code, out, _ := runCmd("-march", "MATS+", "-list", "list2", "-missed", "2")
	if code != exitMiss {
		t.Fatalf("exit = %d, want %d (missed faults)", code, exitMiss)
	}
	if !strings.Contains(out, "missed") {
		t.Fatalf("no missed faults printed:\n%s", out)
	}
}

func TestExitMissedFaultsJSON(t *testing.T) {
	code, out, _ := runCmd("-march", "MATS+", "-list", "list2", "-json")
	if code != exitMiss {
		t.Fatalf("exit = %d, want %d", code, exitMiss)
	}
	var doc struct {
		Coverage float64 `json:"coverage_percent"`
		Missed   []any   `json:"missed"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if doc.Coverage >= 100 || len(doc.Missed) == 0 {
		t.Fatalf("report = %+v", doc)
	}
}

// TestAxisFlags pins the -width/-ports grading lines: March SL keeps full
// intra-word coverage at width 4, and its single-port lift detects none of
// the two-port weak faults (simultaneous conditions need a dedicated march).
func TestAxisFlags(t *testing.T) {
	code, out, errOut := runCmd("-march", "March SL", "-list", "list2", "-width", "4", "-ports", "2")
	if code != exitFull {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "word (w=4, 3 backgrounds): 384/384") {
		t.Fatalf("word grading line missing:\n%s", out)
	}
	if !strings.Contains(out, "mport (2 ports): lifted test detects 0/38") {
		t.Fatalf("mport grading line missing:\n%s", out)
	}
	// Without the flags the lines must not appear.
	if _, out, _ := runCmd("-march", "March SL", "-list", "list2"); strings.Contains(out, "word (") || strings.Contains(out, "mport (") {
		t.Fatalf("default output grew axis lines:\n%s", out)
	}
}

func TestExitUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                                   // neither -march nor -spec
		{"-march", "March NOPE"},             // unknown library test
		{"-spec", "^(r0,w1"},                 // unparsable spec
		{"-spec", "^(r1,w0)"},                // inconsistent: r1 never established
		{"-march", "MATS+", "-list", "nope"}, // unknown fault list
		{"-bogusflag"},                       // flag error
	}
	for _, args := range cases {
		if code, _, _ := runCmd(args...); code != exitUsage {
			t.Errorf("args %v: exit = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestListTests(t *testing.T) {
	code, out, _ := runCmd("-tests")
	if code != exitFull {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "March SL") || !strings.Contains(out, "MATS+") {
		t.Fatalf("library listing incomplete:\n%s", out)
	}
}
