// Command marchsim fault-simulates a march test against a fault list: the
// standalone interface to the memory fault simulator (the paper's reference
// [13]).
//
// Usage:
//
//	marchsim -march "March SL" -list list1
//	marchsim -spec "c(w0) ^(r0,w1) v(r1,w0)" -list simple -missed 10
//
// Exit codes (for CI certification gates):
//
//	0  the march test detects every fault in the list
//	1  the simulation ran but at least one fault is missed
//	2  usage error (bad flags, unknown march test or fault list,
//	   inconsistent march test)
//	3  simulation or output error
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"marchgen"
	"marchgen/internal/buildinfo"
	"marchgen/internal/cliflag"
)

// Exit codes of the marchsim command.
const (
	exitFull  = 0 // full coverage
	exitMiss  = 1 // at least one missed fault
	exitUsage = 2 // flag / march / fault-list errors
	exitSim   = 3 // simulation or output errors
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process plumbing factored out so tests can drive
// the command end to end and assert on its exit code and output.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		marchName = fs.String("march", "", "library march test to simulate (see -tests)")
		spec      = fs.String("spec", "", "march test in notation form, e.g. \"c(w0) ^(r0,w1) v(r1,w0)\"")
		listName  = fs.String("list", "list1", "fault list (list1, list2, simple, simple1, simple2, realistic1, realistic2, dynamic, dynamic1, dynamic2)")
		missed    = fs.Int("missed", 5, "print up to this many missed faults with witnesses")
		listTests = fs.Bool("tests", false, "list the library march tests and exit")
		asJSON    = fs.Bool("json", false, "emit the full report as JSON")
		bistCells = fs.Int("bist", 0, "also print the BIST cost estimate for a memory of this many cells")
		width     = fs.Int("width", 0, "also grade the test on the intra-word faults of a w-bit word (0/1 = bit-oriented)")
		ports     = fs.Int("ports", 0, "port count: 2 also grades the lifted test on the two-port weak-fault catalog")
		trace     = fs.Bool("trace", false, "for each missed fault printed, also replay its witness scenario step by step")
		lanes     = fs.String("lanes", "on", cliflag.LanesUsage)
		version   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	lanesOff, lanesErr := cliflag.ParseLanes(*lanes)
	if lanesErr != nil {
		fmt.Fprintln(stderr, "marchsim:", lanesErr)
		return exitUsage
	}

	if *version {
		buildinfo.Fprint(stdout, "marchsim")
		return exitFull
	}

	if *listTests {
		for _, t := range marchgen.Library() {
			note := ""
			if t.Reconstructed {
				note = "  [reconstructed sequence]"
			}
			fmt.Fprintf(stdout, "%-16s %4s  %s%s\n", t.Name, t.Complexity(), t.Source, note)
		}
		return exitFull
	}

	var (
		test marchgen.March
		err  error
	)
	switch {
	case *spec != "":
		name := *marchName
		if name == "" {
			name = "custom"
		}
		test, err = marchgen.ParseMarch(name, *spec)
		if err != nil {
			fmt.Fprintln(stderr, "marchsim:", err)
			return exitUsage
		}
	case *marchName != "":
		var ok bool
		test, ok = marchgen.MarchByName(*marchName)
		if !ok {
			fmt.Fprintf(stderr, "marchsim: unknown march test %q (use -tests to list)\n", *marchName)
			return exitUsage
		}
	default:
		fmt.Fprintln(stderr, "marchsim: need -march or -spec")
		return exitUsage
	}

	if err := test.CheckConsistency(); err != nil {
		fmt.Fprintln(stderr, "marchsim: inconsistent march test:", err)
		return exitUsage
	}

	faults, err := marchgen.FaultListByName(*listName)
	if err != nil {
		fmt.Fprintln(stderr, "marchsim:", err)
		return exitUsage
	}

	cfg := marchgen.DefaultSimConfig()
	cfg.DisableLanes = lanesOff
	r := marchgen.SimulateWith(test, faults, cfg)
	if err := r.Err(); err != nil {
		fmt.Fprintln(stderr, "marchsim:", err)
		return exitSim
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(stderr, "marchsim:", err)
			return exitSim
		}
		if !r.Full() {
			return exitMiss
		}
		return exitFull
	}
	fmt.Fprintln(stdout, r.Summary())
	if *bistCells > 0 {
		fmt.Fprintf(stdout, "BIST estimate (%d cells): %s\n", *bistCells, marchgen.EstimateBIST(test, *bistCells, 1000))
	}
	if *width > 1 {
		wr, err := marchgen.EvaluateWord(context.Background(), test, *width, false)
		if err != nil {
			fmt.Fprintln(stderr, "marchsim:", err)
			return exitSim
		}
		fmt.Fprintf(stdout, "word (w=%d, %d backgrounds): %d/%d intra-word faults detected\n",
			wr.Width, wr.Backgrounds, wr.Detected, wr.Faults)
	}
	if *ports > 1 {
		mr, err := marchgen.EvaluateMport(context.Background(), test, *ports)
		if err != nil {
			fmt.Fprintln(stderr, "marchsim:", err)
			return exitSim
		}
		fmt.Fprintf(stdout, "mport (2 ports): lifted test detects %d/%d weak faults\n",
			mr.LiftedDetected, mr.Faults)
	}
	for i, m := range r.Missed() {
		if i >= *missed {
			fmt.Fprintf(stdout, "  ... and %d more missed faults\n", len(r.Missed())-i)
			break
		}
		fmt.Fprintf(stdout, "  missed %s  (undetected at %s)\n", m.Fault.ID(), m.Witness)
		if *trace && m.Witness != nil {
			if err := marchgen.TraceWitness(stdout, test, m.Fault, *m.Witness); err != nil {
				fmt.Fprintln(stderr, "marchsim: trace:", err)
			}
		}
	}
	if !r.Full() {
		return exitMiss
	}
	return exitFull
}
