// Command marchsim fault-simulates a march test against a fault list: the
// standalone interface to the memory fault simulator (the paper's reference
// [13]).
//
// Usage:
//
//	marchsim -march "March SL" -list list1
//	marchsim -spec "c(w0) ^(r0,w1) v(r1,w0)" -list simple -missed 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"marchgen"
)

func main() {
	var (
		marchName = flag.String("march", "", "library march test to simulate (see -tests)")
		spec      = flag.String("spec", "", "march test in notation form, e.g. \"c(w0) ^(r0,w1) v(r1,w0)\"")
		listName  = flag.String("list", "list1", "fault list (list1, list2, simple, simple1, simple2, realistic1, realistic2, dynamic, dynamic1, dynamic2)")
		missed    = flag.Int("missed", 5, "print up to this many missed faults with witnesses")
		listTests = flag.Bool("tests", false, "list the library march tests and exit")
		asJSON    = flag.Bool("json", false, "emit the full report as JSON")
		bistCells = flag.Int("bist", 0, "also print the BIST cost estimate for a memory of this many cells")
		trace     = flag.Bool("trace", false, "for each missed fault printed, also replay its witness scenario step by step")
	)
	flag.Parse()

	if *listTests {
		for _, t := range marchgen.Library() {
			note := ""
			if t.Reconstructed {
				note = "  [reconstructed sequence]"
			}
			fmt.Printf("%-16s %4s  %s%s\n", t.Name, t.Complexity(), t.Source, note)
		}
		return
	}

	var (
		test marchgen.March
		err  error
	)
	switch {
	case *spec != "":
		name := *marchName
		if name == "" {
			name = "custom"
		}
		test, err = marchgen.ParseMarch(name, *spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchsim:", err)
			os.Exit(2)
		}
	case *marchName != "":
		var ok bool
		test, ok = marchgen.MarchByName(*marchName)
		if !ok {
			fmt.Fprintf(os.Stderr, "marchsim: unknown march test %q (use -tests to list)\n", *marchName)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "marchsim: need -march or -spec")
		os.Exit(2)
	}

	if err := test.CheckConsistency(); err != nil {
		fmt.Fprintln(os.Stderr, "marchsim: inconsistent march test:", err)
		os.Exit(2)
	}

	faults, err := marchgen.FaultListByName(*listName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		os.Exit(2)
	}

	r := marchgen.Simulate(test, faults)
	if err := r.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(os.Stderr, "marchsim:", err)
			os.Exit(1)
		}
		if !r.Full() {
			os.Exit(1)
		}
		return
	}
	fmt.Println(r.Summary())
	if *bistCells > 0 {
		fmt.Printf("BIST estimate (%d cells): %s\n", *bistCells, marchgen.EstimateBIST(test, *bistCells, 1000))
	}
	for i, m := range r.Missed() {
		if i >= *missed {
			fmt.Printf("  ... and %d more missed faults\n", len(r.Missed())-i)
			break
		}
		fmt.Printf("  missed %s  (undetected at %s)\n", m.Fault.ID(), m.Witness)
		if *trace && m.Witness != nil {
			if err := marchgen.TraceWitness(os.Stdout, test, m.Fault, *m.Witness); err != nil {
				fmt.Fprintln(os.Stderr, "marchsim: trace:", err)
			}
		}
	}
	if !r.Full() {
		os.Exit(1)
	}
}
