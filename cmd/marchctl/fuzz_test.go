package main

import (
	"net/http"
	"testing"
	"time"
)

// FuzzRetryAfterParse hardens the client's Retry-After parsing: whatever a
// (broken, hostile, or merely creative) server puts in the header, the
// parser must not panic and must never hand the retry loop a negative
// delay — a negative sleep would turn backoff into a busy-loop hammering
// the very server that asked for relief.
func FuzzRetryAfterParse(f *testing.F) {
	for _, seed := range []string{
		"", "0", "1", "60", "-1", "+3", " 5 ", "\t7\n", "2.5", "1e9",
		"9223372036854775807", "9999999999999999999999",
		"Wed, 21 Oct 2015 07:28:00 GMT", "never", "0x10", "١٢", "5;q=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v string) {
		h := http.Header{"Retry-After": {v}}
		d, ok := retryAfter(h)
		if !ok && d != 0 {
			t.Fatalf("retryAfter(%q) = (%v, false): rejected values must carry no delay", v, d)
		}
		if d < 0 {
			t.Fatalf("retryAfter(%q) = %v: negative delay", v, d)
		}
		if ok && d%time.Second != 0 {
			t.Fatalf("retryAfter(%q) = %v: the seconds form must parse to whole seconds", v, d)
		}
	})
}
