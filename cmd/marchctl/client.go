package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"marchgen/internal/retry"
)

// client is the retrying marchd client. Every request runs behind
// retry.Do: transport errors (connection refused, reset mid-response),
// backpressure statuses (502/503/504) and admission sheds (429) are
// retried with full-jitter backoff, honoring the server's Retry-After
// header when it sends one — always within the -timeout elapsed budget;
// every other status is returned to the caller as the final answer. A
// circuit breaker sits in front of the whole retry loop: a node that
// fails several logical requests in a row (transport-dead or
// retry-exhausted) is not hammered further until a cooldown passes and a
// probe succeeds.
//
// Retrying mutating requests is safe because marchd's mutations are
// idempotent by construction: generation jobs are deduplicated on their
// content-addressed cache key and campaigns are content-addressed on
// their spec hash, so a retried submit lands on the same job or campaign.
type client struct {
	base    string // e.g. "http://127.0.0.1:8080", no trailing slash
	hc      *http.Client
	pol     retry.Policy
	poll    time.Duration // status poll interval for -wait
	breaker retry.Breaker
}

func newClient(addr string, retries int, poll, timeout time.Duration) *client {
	return &client{
		base: strings.TrimRight(addr, "/"),
		hc:   &http.Client{},
		// MaxElapsed mirrors the command's -timeout so a single request's
		// retry loop never out-sleeps the overall deadline: a huge server
		// Retry-After makes the client give up immediately rather than
		// sleep toward a deadline it cannot meet.
		pol:  retry.Policy{MaxAttempts: retries, MaxElapsed: timeout},
		poll: poll,
	}
}

// response is the terminal outcome of a retried request.
type response struct {
	status int
	header http.Header
	body   []byte
}

// transientStatus reports whether an HTTP status is worth retrying: the
// gateway/backpressure family, plus 429 — marchd's admission controller
// shedding load, which always carries a Retry-After to honor. Other 4xx
// are caller errors, other 5xx are server bugs a retry will not fix.
func transientStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter parses a Retry-After header (seconds form). The HTTP-date
// form is not produced by marchd and falls back to ok=false. Huge values
// are clamped before the seconds-to-Duration conversion can overflow into
// a negative delay (found by FuzzRetryAfterParse): the retry budget, not
// this parser, decides that such a wait is hopeless.
func retryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil || secs < 0 {
		return 0, false
	}
	const maxSecs = int64(time.Duration(1<<63-1) / time.Second)
	if secs > maxSecs {
		secs = maxSecs
	}
	return time.Duration(secs) * time.Second, true
}

// do performs one logical request with retries behind the circuit
// breaker. body may be nil; it is replayed verbatim on every attempt.
//
// The breaker counts logical outcomes, not attempts: any final HTTP
// answer — success or a 4xx/5xx the server chose to send — proves the
// node alive and closes the run, while a transport-dead or
// retry-exhausted request counts one failure. Several in a row open the
// breaker and subsequent requests fail fast locally.
func (c *client) do(ctx context.Context, method, path string, body []byte) (*response, error) {
	if err := c.breaker.Allow(); err != nil {
		return nil, fmt.Errorf("%s %s: %w", method, path, err)
	}
	resp, err := c.doRetrying(ctx, method, path, body)
	c.breaker.Report(err)
	return resp, err
}

func (c *client) doRetrying(ctx context.Context, method, path string, body []byte) (*response, error) {
	var out *response
	err := retry.Do(ctx, c.pol, func(ctx context.Context) error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return retry.Permanent(err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err // transport error: retryable
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err // reset mid-body: retryable
		}
		if transientStatus(resp.StatusCode) {
			err := fmt.Errorf("%s %s: HTTP %d: %s", method, path, resp.StatusCode, compactBody(data))
			if d, ok := retryAfter(resp.Header); ok {
				return retry.After(err, d)
			}
			return err
		}
		out = &response{status: resp.StatusCode, header: resp.Header, body: data}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// getJSON GETs path and decodes the body into v when the status is 200.
func (c *client) getJSON(ctx context.Context, path string, v any) (*response, error) {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	if resp.status == http.StatusOK && v != nil {
		if err := json.Unmarshal(resp.body, v); err != nil {
			return resp, fmt.Errorf("GET %s: bad response body: %v", path, err)
		}
	}
	return resp, nil
}

// compactBody renders a response body for an error message: the server's
// JSON error field when present, else the (truncated) raw body.
func compactBody(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := strings.TrimSpace(string(data))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// apiErrorOf extracts the server's error message from a non-2xx response.
func apiErrorOf(resp *response) string {
	return compactBody(resp.body)
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
