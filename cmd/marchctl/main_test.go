package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"marchgen/internal/fabric"
	"marchgen/internal/retry"
	"marchgen/internal/service"
)

// flaky wraps a handler with injected transient failures: the first
// failFirst requests are sabotaged (503 + Retry-After, or a raw
// connection close), everything after passes through. It is the test
// double of a marchd instance under backpressure or a flaky network.
type flaky struct {
	next      http.Handler
	failFirst int
	reset     bool // true: hijack and close the conn; false: 503 + Retry-After: 0

	mu   sync.Mutex
	seen int
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.seen++
	sabotage := f.seen <= f.failFirst
	f.mu.Unlock()
	if !sabotage {
		f.next.ServeHTTP(w, r)
		return
	}
	if f.reset {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server does not support hijacking")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			panic(err)
		}
		conn.Close() // the client sees a connection reset / EOF
		return
	}
	w.Header().Set("Retry-After", "0")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, `{"error":"injected backpressure"}`)
}

func (f *flaky) requests() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen
}

// newFlakyService starts a real marchd service behind the flaky wrapper.
func newFlakyService(t *testing.T, failFirst int, reset bool) (*httptest.Server, *flaky) {
	t.Helper()
	s := service.New(service.Config{Workers: 1, DataDir: t.TempDir()})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	f := &flaky{next: s.Handler(), failFirst: failFirst, reset: reset}
	srv := httptest.NewServer(f)
	t.Cleanup(srv.Close)
	return srv, f
}

// runCtl drives the command exactly as main does.
func runCtl(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestSubmitRoundTripThrough503s is the acceptance pin: a full
// submit → poll → result round trip against a real marchd that answers
// the first two requests with 503 + Retry-After must succeed without the
// caller noticing.
func TestSubmitRoundTripThrough503s(t *testing.T) {
	srv, f := newFlakyService(t, 2, false)
	code, stdout, stderr := runCtl(t,
		"-addr", srv.URL, "-retries", "6", "-poll", "5ms", "-timeout", "2m",
		"submit", "-list", "list2", "-wait")
	if code != exitOK {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	var doc struct {
		Test struct {
			Name string `json:"name"`
		} `json:"test"`
		Report struct {
			Coverage float64 `json:"coverage_percent"`
		} `json:"report"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("stdout is not a result document: %v\n%s", err, stdout)
	}
	if doc.Report.Coverage != 100 {
		t.Fatalf("coverage = %v, want 100", doc.Report.Coverage)
	}
	if f.requests() < 3 {
		t.Fatalf("server saw %d requests; the two injected 503s were not retried through", f.requests())
	}
}

// TestSubmitRoundTripThroughConnectionResets: same round trip, but the
// first two requests die with a raw connection close instead of a clean
// 503 — the transport-error retry path.
func TestSubmitRoundTripThroughConnectionResets(t *testing.T) {
	srv, f := newFlakyService(t, 2, true)
	code, stdout, stderr := runCtl(t,
		"-addr", srv.URL, "-retries", "6", "-poll", "5ms", "-timeout", "2m",
		"submit", "-list", "list2", "-wait")
	if code != exitOK {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, `"coverage_percent":100`) {
		t.Fatalf("stdout lost the result document:\n%s", stdout)
	}
	if f.requests() < 3 {
		t.Fatalf("server saw %d requests, want the resets retried", f.requests())
	}
}

// TestRetryAfterOverridesBackoff pins the Retry-After contract at the
// client layer: with an hour-long computed backoff, only the server's
// Retry-After: 0 can let three attempts finish promptly. A hang here
// means the header was ignored.
func TestRetryAfterOverridesBackoff(t *testing.T) {
	var calls int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	}))
	defer srv.Close()

	c := newClient(srv.URL, 3, time.Millisecond, time.Minute)
	c.pol = retry.Policy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	resp, err := c.do(ctx, "GET", "/healthz", nil)
	if err != nil || resp.status != 200 {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("3 attempts took %v; Retry-After: 0 was not honored over the 1h backoff", elapsed)
	}
}

// TestRetriesExhausted: a server that never recovers must exhaust the
// budget and exit 3 (transport failure), not hang or lie.
func TestRetriesExhausted(t *testing.T) {
	var calls int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	code, _, stderr := runCtl(t, "-addr", srv.URL, "-retries", "3", "submit", "-list", "list2")
	if code != exitTransport {
		t.Fatalf("exit = %d, want %d; stderr:\n%s", code, exitTransport, stderr)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 3 {
		t.Fatalf("server saw %d attempts, want exactly the -retries 3", calls)
	}
}

// TestClientErrorsAreNotRetried: 4xx answers are final — retrying them
// would hammer the server with requests it already rejected.
func TestClientErrorsAreNotRetried(t *testing.T) {
	var calls int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintln(w, `{"error":"unknown fault list"}`)
	}))
	defer srv.Close()
	code, _, stderr := runCtl(t, "-addr", srv.URL, "-retries", "5", "submit", "-list", "nope")
	if code != exitRemote {
		t.Fatalf("exit = %d, want %d", code, exitRemote)
	}
	if !strings.Contains(stderr, "unknown fault list") {
		t.Fatalf("stderr lost the server's error:\n%s", stderr)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1", calls)
	}
}

func TestSimulateRoundTrip(t *testing.T) {
	srv, _ := newFlakyService(t, 0, false)
	code, stdout, stderr := runCtl(t, "-addr", srv.URL, "simulate", "-march", "March SL", "-list", "list2")
	if code != exitOK {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, `"report"`) || !strings.Contains(stdout, `"summary"`) {
		t.Fatalf("stdout is not a simulation document:\n%s", stdout)
	}
}

// TestDiagnoseRoundTrip drives `marchctl diagnose` against a real marchd:
// a clean MATS+ run (empty syndrome) over the single-cell model space is
// consistent with many candidates, so the server must answer with an
// ambiguous verdict and a follow-up march recommendation.
func TestDiagnoseRoundTrip(t *testing.T) {
	srv, _ := newFlakyService(t, 0, false)
	code, stdout, stderr := runCtl(t,
		"-addr", srv.URL, "-poll", "5ms", "-timeout", "2m",
		"diagnose", "-list", "simple1", "-obs", "MATS+:", "-wait")
	if code != exitOK {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	var doc struct {
		Status     string `json:"status"`
		Candidates []any  `json:"candidates"`
		Next       *struct {
			Name string `json:"name"`
			Spec string `json:"spec"`
		} `json:"next"`
		Key string `json:"cache_key"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("stdout is not a diagnose document: %v\n%s", err, stdout)
	}
	if doc.Status != "ambiguous" || len(doc.Candidates) < 2 || doc.Key == "" {
		t.Fatalf("diagnose document = %+v", doc)
	}
	if doc.Next == nil || doc.Next.Spec == "" {
		t.Fatalf("no follow-up march recommended: %+v", doc)
	}

	// Repeating the identical request is a cache hit: same document, no job.
	code, stdout2, stderr := runCtl(t,
		"-addr", srv.URL, "-poll", "5ms", "-timeout", "2m",
		"diagnose", "-list", "simple1", "-obs", "MATS+:", "-wait")
	if code != exitOK {
		t.Fatalf("repeat exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout2, doc.Key) {
		t.Fatalf("repeat answer lost the cache key %s:\n%s", doc.Key, stdout2)
	}
}

func TestCampaignRoundTripWithWait(t *testing.T) {
	srv, _ := newFlakyService(t, 1, false) // one injected 503 on the submit itself
	specFile := filepath.Join(t.TempDir(), "sweep.json")
	spec := `{"name":"ctl-e2e","lists":["list2"],"orders":["up","down"],"shard_size":1}`
	if err := os.WriteFile(specFile, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCtl(t,
		"-addr", srv.URL, "-retries", "4", "-poll", "10ms", "-timeout", "2m",
		"campaign", "-spec", specFile, "-wait")
	if code != exitOK {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	var cv struct {
		Status string `json:"status"`
		Units  struct {
			Total int `json:"total"`
			Done  int `json:"done"`
		} `json:"units"`
	}
	if err := json.Unmarshal([]byte(stdout), &cv); err != nil {
		t.Fatalf("stdout is not a campaign snapshot: %v\n%s", err, stdout)
	}
	if cv.Status != "done" || cv.Units.Done != cv.Units.Total || cv.Units.Total != 2 {
		t.Fatalf("campaign snapshot = %+v, want 2/2 units done", cv)
	}
}

func TestWaitAndResultCommands(t *testing.T) {
	srv, _ := newFlakyService(t, 0, false)
	// Submit without -wait, then drive the job with the standalone commands.
	code, stdout, stderr := runCtl(t, "-addr", srv.URL, "submit", "-list", "list2")
	if code != exitOK {
		t.Fatalf("submit exit = %d, stderr:\n%s", code, stderr)
	}
	fields := strings.Fields(stdout)
	if len(fields) < 2 || fields[0] != "job" {
		t.Fatalf("submit output lost the job id:\n%s", stdout)
	}
	id := fields[1]

	code, stdout, stderr = runCtl(t, "-addr", srv.URL, "-poll", "5ms", "wait", id)
	if code != exitOK || !strings.Contains(stdout, `"status": "done"`) {
		t.Fatalf("wait exit = %d, stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	code, stdout, stderr = runCtl(t, "-addr", srv.URL, "result", id)
	if code != exitOK || !strings.Contains(stdout, `"coverage_percent":100`) {
		t.Fatalf("result exit = %d, stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	// Unknown job: a clean remote failure, not a retry storm.
	code, _, stderr = runCtl(t, "-addr", srv.URL, "result", "no-such-job")
	if code != exitRemote || !strings.Contains(stderr, "unknown job") {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
}

// TestClusterCampaignRoundTrip drives `campaign -cluster -wait` against a
// coordinator-mode marchd with one in-process fabric worker: the spec file
// is the same bare JSON the local campaign path accepts, and the final
// stdout is the fabric session status with every shard committed.
func TestClusterCampaignRoundTrip(t *testing.T) {
	s := service.New(service.Config{Workers: 1, DataDir: t.TempDir(), Coordinator: true})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	w := &fabric.Worker{Coordinator: srv.URL, Name: "ctl-test", Poll: 5 * time.Millisecond}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil && !strings.Contains(err.Error(), "context canceled") {
			t.Errorf("worker: %v", err)
		}
	})

	specFile := filepath.Join(t.TempDir(), "sweep.json")
	spec := `{"name":"ctl-cluster","lists":["list2"],"orders":["up","down"],"shard_size":1}`
	if err := os.WriteFile(specFile, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCtl(t,
		"-addr", srv.URL, "-poll", "10ms", "-timeout", "2m",
		"campaign", "-cluster", "-spec", specFile, "-wait")
	if code != exitOK {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	var sv struct {
		ID             string         `json:"id"`
		Shards         int            `json:"shards"`
		Committed      int            `json:"committed"`
		Done           bool           `json:"done"`
		ShardsByWorker map[string]int `json:"shards_by_worker"`
	}
	if err := json.Unmarshal([]byte(stdout), &sv); err != nil {
		t.Fatalf("stdout is not a session status: %v\n%s", err, stdout)
	}
	if !sv.Done || sv.Committed != sv.Shards || sv.Shards != 2 {
		t.Fatalf("session = %+v, want 2/2 shards done", sv)
	}
	if len(sv.ShardsByWorker) == 0 {
		t.Fatalf("session lost the per-worker attribution: %+v", sv)
	}
}

// TestTimeoutBoundsRetryTime pins the -timeout satellite: a server that
// always answers 503 with an hour-long Retry-After must make marchctl
// give up within its own deadline — immediately, in fact, because the
// retry budget refuses a sleep it cannot afford — instead of honoring
// the header into a de-facto hang.
func TestTimeoutBoundsRetryTime(t *testing.T) {
	var calls int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"overloaded, come back in an hour"}`)
	}))
	defer srv.Close()

	start := time.Now()
	code, _, stderr := runCtl(t,
		"-addr", srv.URL, "-retries", "5", "-timeout", "1s",
		"submit", "-list", "list2")
	if code != exitTransport {
		t.Fatalf("exit = %d, want %d; stderr:\n%s", code, exitTransport, stderr)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("command took %v; -timeout 1s did not bound the retry time", elapsed)
	}
	if !strings.Contains(stderr, "overloaded") {
		t.Fatalf("stderr lost the server's last error:\n%s", stderr)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("server saw %d attempts; the 1h Retry-After should have ended retrying after the first", calls)
	}
}

// Test429RetriedWithBudget pins the admission-shed contract: 429 +
// Retry-After is transient — the client honors the header and retries
// through to the eventual answer, within its elapsed budget.
func Test429RetriedWithBudget(t *testing.T) {
	var calls int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"generate shed under load"}`)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	}))
	defer srv.Close()

	c := newClient(srv.URL, 5, time.Millisecond, time.Minute)
	c.pol.Sleep = func(ctx context.Context, d time.Duration) error { return nil }
	resp, err := c.do(context.Background(), "GET", "/healthz", nil)
	if err != nil || resp.status != 200 {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	mu.Lock()
	if calls != 3 {
		mu.Unlock()
		t.Fatalf("server saw %d requests, want the two 429s retried through", calls)
	}

	// And the same 429 against an exhausted budget gives up immediately:
	// Retry-After is honored against MaxElapsed, never past it.
	calls = 0
	mu.Unlock()
	c2 := newClient(srv.URL, 5, time.Millisecond, time.Minute)
	c2.pol = retry.Policy{MaxAttempts: 5, MaxElapsed: time.Nanosecond}
	if _, err := c2.do(context.Background(), "GET", "/healthz", nil); err == nil {
		t.Fatal("exhausted budget still retried through the 429")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("server saw %d requests, want 1 (no budget for a second)", calls)
	}
}

// TestBreakerFailsFast pins the circuit breaker: once several logical
// requests in a row exhaust their retries, the client answers locally
// with ErrOpen instead of hammering the dead node — and a successful
// probe after the cooldown closes it again.
func TestBreakerFailsFast(t *testing.T) {
	var calls int
	var mu sync.Mutex
	dead := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		isDead := dead
		mu.Unlock()
		if isDead {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	}))
	defer srv.Close()

	c := newClient(srv.URL, 2, time.Millisecond, time.Minute)
	c.pol.Sleep = func(ctx context.Context, d time.Duration) error { return nil }
	c.breaker.Threshold = 3
	c.breaker.Cooldown = time.Millisecond

	for i := 0; i < 3; i++ {
		if _, err := c.do(context.Background(), "GET", "/healthz", nil); err == nil {
			t.Fatalf("request %d against the dead node succeeded", i)
		}
	}
	mu.Lock()
	seen := calls
	mu.Unlock()
	if seen != 6 { // 3 logical requests × 2 attempts
		t.Fatalf("server saw %d attempts before the breaker opened, want 6", seen)
	}
	// Open: the next request fails fast without touching the server.
	if _, err := c.do(context.Background(), "GET", "/healthz", nil); !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("err = %v, want retry.ErrOpen", err)
	}
	mu.Lock()
	if calls != seen {
		mu.Unlock()
		t.Fatalf("breaker-open request still reached the server (%d attempts)", calls)
	}
	dead = false
	mu.Unlock()
	// After the cooldown the probe goes through, succeeds, and closes the
	// breaker for the requests behind it.
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if resp, err := c.do(context.Background(), "GET", "/healthz", nil); err != nil || resp.status != 200 {
			t.Fatalf("request %d after recovery: resp=%+v err=%v", i, resp, err)
		}
	}
	if got := c.breaker.State(); got != "closed" {
		t.Fatalf("breaker state after recovery = %s, want closed", got)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                               // no command
		{"frobnicate"},                   // unknown command
		{"submit"},                       // missing -list
		{"wait"},                         // missing job id
		{"result"},                       // missing job id
		{"simulate"},                     // missing -march/-spec
		{"diagnose"},                     // missing -body / -list+-obs
		{"diagnose", "-list", "simple1"}, // -list without any -obs
		{"campaign"},                     // missing -spec
		{"-retries", "x", "submit"},      // bad flag value
	}
	for _, args := range cases {
		if code, _, _ := runCtl(t, args...); code != exitUsage {
			t.Fatalf("run(%q) = %d, want %d", args, code, exitUsage)
		}
	}
}
