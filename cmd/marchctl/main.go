// Command marchctl is the retrying command-line client of marchd: it
// submits generation jobs, waits for and fetches their results, runs
// synchronous simulations, and drives sweep campaigns — riding out
// transient failures (503 backpressure, connection resets, gateway
// errors) with bounded exponential backoff and full jitter
// (internal/retry), honoring the server's Retry-After header.
//
// Retried submits are safe: marchd deduplicates generation jobs on their
// content-addressed cache key and campaigns on their spec hash, so a
// replayed request lands on the work already in flight.
//
// The global -timeout bounds the whole command: it is both the context
// deadline for polling loops and the retry budget of every request
// (retry.Policy.MaxElapsed), so marchctl never sleeps through a server
// Retry-After longer than its own remaining deadline.
//
// Usage:
//
//	marchctl [-addr URL] [-retries N] [-timeout D] <command> [flags]
//
//	marchctl submit -list list2 -wait
//	marchctl wait <job-id>
//	marchctl result <job-id>
//	marchctl simulate -march "March SL" -list list1
//	marchctl campaign -spec sweep.json -wait
//	marchctl campaign -cluster -spec sweep.json -wait
//
// campaign -cluster submits the spec to a coordinator-mode marchd's
// distributed fabric (POST /v1/fabric/campaigns) instead of the local
// campaign runner; with -wait it polls the fabric session until every
// shard is committed, printing the final session status (which includes
// the per-worker shard attribution).
//
// Exit codes (for scripts and CI):
//
//	0  success
//	1  the server rejected the request or the job/campaign failed
//	2  usage error (bad flags or arguments)
//	3  transport failure after exhausting retries
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"marchgen/internal/buildinfo"
)

// Exit codes of the marchctl command.
const (
	exitOK        = 0 // success
	exitRemote    = 1 // server-side rejection or failed job/campaign
	exitUsage     = 2 // flag / argument errors
	exitTransport = 3 // retries exhausted without a terminal answer
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process plumbing factored out so tests can drive
// the command end to end against an httptest server and assert on exit
// codes and output.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "marchd base URL")
		retries = fs.Int("retries", 4, "attempts per request before giving up")
		timeout = fs.Duration("timeout", 5*time.Minute, "overall deadline for the whole command")
		poll    = fs.Duration("poll", 200*time.Millisecond, "status poll interval for -wait")
		version = fs.Bool("version", false, "print version and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: marchctl [flags] <submit|wait|result|simulate|diagnose|campaign> [command flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *version {
		buildinfo.Fprint(stdout, "marchctl")
		return exitOK
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return exitUsage
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := newClient(*addr, *retries, *poll, *timeout)

	switch rest[0] {
	case "submit":
		return cmdSubmit(ctx, c, rest[1:], stdout, stderr)
	case "wait":
		return cmdWait(ctx, c, rest[1:], stdout, stderr)
	case "result":
		return cmdResult(ctx, c, rest[1:], stdout, stderr)
	case "simulate":
		return cmdSimulate(ctx, c, rest[1:], stdout, stderr)
	case "diagnose":
		return cmdDiagnose(ctx, c, rest[1:], stdout, stderr)
	case "campaign":
		return cmdCampaign(ctx, c, rest[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "marchctl: unknown command %q\n", rest[0])
		fs.Usage()
		return exitUsage
	}
}

// jobView mirrors the service's job snapshot wire form.
type jobView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func (j jobView) terminal() bool {
	return j.Status == "done" || j.Status == "failed" || j.Status == "canceled"
}

// cmdSubmit posts a generation request. A cache hit answers immediately;
// a miss enqueues a job, and -wait polls it to completion and prints the
// result document.
func cmdSubmit(ctx context.Context, c *client, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchctl submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list      = fs.String("list", "", "fault list to generate a march test for (list1, list2, simple, ...)")
		timeoutMS = fs.Int64("timeout-ms", 0, "per-job deadline in milliseconds (0 = server default)")
		wait      = fs.Bool("wait", false, "poll the job to completion and print its result")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *list == "" {
		fmt.Fprintln(stderr, "marchctl submit: need -list")
		return exitUsage
	}
	body, err := json.Marshal(struct {
		List      string `json:"list"`
		TimeoutMS int64  `json:"timeout_ms,omitempty"`
	}{*list, *timeoutMS})
	if err != nil {
		fmt.Fprintln(stderr, "marchctl:", err)
		return exitUsage
	}
	resp, err := c.do(ctx, "POST", "/v1/generate", body)
	if err != nil {
		fmt.Fprintln(stderr, "marchctl:", err)
		return exitTransport
	}
	switch resp.status {
	case 200: // cache hit: the result document itself
		fmt.Fprintln(stdout, string(resp.body))
		return exitOK
	case 202:
		var accepted struct {
			Job  jobView `json:"job"`
			Poll string  `json:"poll"`
		}
		if err := json.Unmarshal(resp.body, &accepted); err != nil {
			fmt.Fprintln(stderr, "marchctl: bad 202 body:", err)
			return exitRemote
		}
		if !*wait {
			fmt.Fprintf(stdout, "job %s %s; poll with: marchctl wait %s\n", accepted.Job.ID, accepted.Job.Status, accepted.Job.ID)
			return exitOK
		}
		return waitAndPrintResult(ctx, c, accepted.Job.ID, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "marchctl: submit rejected: HTTP %d: %s\n", resp.status, apiErrorOf(resp))
		return exitRemote
	}
}

// waitJob polls the job until it reaches a terminal state.
func waitJob(ctx context.Context, c *client, id string) (jobView, error) {
	for {
		var j jobView
		resp, err := c.getJSON(ctx, "/v1/jobs/"+id, &j)
		if err != nil {
			return jobView{}, err
		}
		if resp.status != 200 {
			return jobView{}, fmt.Errorf("HTTP %d: %s", resp.status, apiErrorOf(resp))
		}
		if j.terminal() {
			return j, nil
		}
		if err := sleepCtx(ctx, c.poll); err != nil {
			return jobView{}, err
		}
	}
}

// waitAndPrintResult polls a job to completion and prints its result
// document (fetched from the result endpoint: the exact cached bytes).
func waitAndPrintResult(ctx context.Context, c *client, id string, stdout, stderr io.Writer) int {
	j, err := waitJob(ctx, c, id)
	if err != nil {
		fmt.Fprintln(stderr, "marchctl:", err)
		return exitTransport
	}
	if j.Status != "done" {
		fmt.Fprintf(stderr, "marchctl: job %s %s: %s\n", j.ID, j.Status, j.Error)
		return exitRemote
	}
	resp, err := c.do(ctx, "GET", "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		fmt.Fprintln(stderr, "marchctl:", err)
		return exitTransport
	}
	if resp.status != 200 {
		fmt.Fprintf(stderr, "marchctl: result: HTTP %d: %s\n", resp.status, apiErrorOf(resp))
		return exitRemote
	}
	fmt.Fprintln(stdout, string(resp.body))
	return exitOK
}

// cmdWait polls a job id to completion and prints the final snapshot.
func cmdWait(ctx context.Context, c *client, args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: marchctl wait <job-id>")
		return exitUsage
	}
	j, err := waitJob(ctx, c, args[0])
	if err != nil {
		fmt.Fprintln(stderr, "marchctl:", err)
		return exitTransport
	}
	out, _ := json.MarshalIndent(j, "", "  ")
	fmt.Fprintln(stdout, string(out))
	if j.Status != "done" {
		return exitRemote
	}
	return exitOK
}

// cmdResult fetches a done job's result document.
func cmdResult(ctx context.Context, c *client, args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: marchctl result <job-id>")
		return exitUsage
	}
	resp, err := c.do(ctx, "GET", "/v1/jobs/"+args[0]+"/result", nil)
	if err != nil {
		fmt.Fprintln(stderr, "marchctl:", err)
		return exitTransport
	}
	if resp.status != 200 {
		fmt.Fprintf(stderr, "marchctl: HTTP %d: %s\n", resp.status, apiErrorOf(resp))
		return exitRemote
	}
	fmt.Fprintln(stdout, string(resp.body))
	return exitOK
}

// cmdSimulate runs a synchronous fault simulation.
func cmdSimulate(ctx context.Context, c *client, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchctl simulate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		march = fs.String("march", "", "library march test to simulate")
		spec  = fs.String("spec", "", "march test in notation form")
		list  = fs.String("list", "list1", "fault list to simulate against")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *march == "" && *spec == "" {
		fmt.Fprintln(stderr, "marchctl simulate: need -march or -spec")
		return exitUsage
	}
	body, err := json.Marshal(struct {
		March struct {
			Name string `json:"name,omitempty"`
			Spec string `json:"spec,omitempty"`
		} `json:"march"`
		List string `json:"list"`
	}{struct {
		Name string `json:"name,omitempty"`
		Spec string `json:"spec,omitempty"`
	}{*march, *spec}, *list})
	if err != nil {
		fmt.Fprintln(stderr, "marchctl:", err)
		return exitUsage
	}
	resp, err := c.do(ctx, "POST", "/v1/simulate", body)
	if err != nil {
		fmt.Fprintln(stderr, "marchctl:", err)
		return exitTransport
	}
	if resp.status != 200 {
		fmt.Fprintf(stderr, "marchctl: HTTP %d: %s\n", resp.status, apiErrorOf(resp))
		return exitRemote
	}
	fmt.Fprintln(stdout, string(resp.body))
	return exitOK
}

// obsFlag collects repeated "-obs" values: each is one executed test and
// its syndrome, "NAME:id1,id2,..." (an empty id list means a clean run).
type obsFlag []string

func (o *obsFlag) String() string { return strings.Join(*o, " ") }
func (o *obsFlag) Set(v string) error {
	*o = append(*o, v)
	return nil
}

// cmdDiagnose posts an adaptive fault-localization request: the fault-model
// space and the syndromes of the march tests a tester has executed. The
// server answers with the consistent candidate set and — while it is still
// ambiguous — the follow-up march that best splits it. Like submit, a cache
// hit answers immediately and a miss enqueues a job.
func cmdDiagnose(ctx context.Context, c *client, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchctl diagnose", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var obs obsFlag
	var (
		list      = fs.String("list", "", "fault-model space: the fault list the defect is assumed to come from")
		bodyFile  = fs.String("body", "", "full request JSON file (\"-\" reads stdin); overrides -list/-obs")
		timeoutMS = fs.Int64("timeout-ms", 0, "per-job deadline in milliseconds (0 = server default)")
		wait      = fs.Bool("wait", false, "poll the job to completion and print its result")
	)
	fs.Var(&obs, "obs", "executed test and its syndrome, \"NAME:M1#0@2,M3#1@0\" (repeatable; empty syndrome = clean run)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	var body []byte
	switch {
	case *bodyFile != "":
		var err error
		if *bodyFile == "-" {
			body, err = io.ReadAll(os.Stdin)
		} else {
			body, err = os.ReadFile(*bodyFile)
		}
		if err != nil {
			fmt.Fprintln(stderr, "marchctl:", err)
			return exitUsage
		}
	case *list != "" && len(obs) > 0:
		type marchRef struct {
			Name string `json:"name"`
		}
		type observation struct {
			March    marchRef `json:"march"`
			Syndrome []string `json:"syndrome"`
		}
		var obsDocs []observation
		for _, o := range obs {
			name, ids, _ := strings.Cut(o, ":")
			doc := observation{March: marchRef{Name: strings.TrimSpace(name)}, Syndrome: []string{}}
			for _, id := range strings.Split(ids, ",") {
				if id = strings.TrimSpace(id); id != "" {
					doc.Syndrome = append(doc.Syndrome, id)
				}
			}
			obsDocs = append(obsDocs, doc)
		}
		var err error
		body, err = json.Marshal(struct {
			List         string        `json:"list"`
			Observations []observation `json:"observations"`
			TimeoutMS    int64         `json:"timeout_ms,omitempty"`
		}{*list, obsDocs, *timeoutMS})
		if err != nil {
			fmt.Fprintln(stderr, "marchctl:", err)
			return exitUsage
		}
	default:
		fmt.Fprintln(stderr, "marchctl diagnose: need -body, or -list with at least one -obs")
		return exitUsage
	}
	resp, err := c.do(ctx, "POST", "/v1/diagnose", body)
	if err != nil {
		fmt.Fprintln(stderr, "marchctl:", err)
		return exitTransport
	}
	switch resp.status {
	case 200: // cache hit: the result document itself
		fmt.Fprintln(stdout, string(resp.body))
		return exitOK
	case 202:
		var accepted struct {
			Job  jobView `json:"job"`
			Poll string  `json:"poll"`
		}
		if err := json.Unmarshal(resp.body, &accepted); err != nil {
			fmt.Fprintln(stderr, "marchctl: bad 202 body:", err)
			return exitRemote
		}
		if !*wait {
			fmt.Fprintf(stdout, "job %s %s; poll with: marchctl wait %s\n", accepted.Job.ID, accepted.Job.Status, accepted.Job.ID)
			return exitOK
		}
		return waitAndPrintResult(ctx, c, accepted.Job.ID, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "marchctl: diagnose rejected: HTTP %d: %s\n", resp.status, apiErrorOf(resp))
		return exitRemote
	}
}

// campaignView mirrors the service's campaign snapshot wire form (the
// fields marchctl reads; the full document is printed verbatim).
type campaignView struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func (cv campaignView) terminal() bool {
	return cv.Status == "done" || cv.Status == "failed" || cv.Status == "interrupted"
}

// cmdCampaign submits a campaign spec (a JSON file, or "-" for stdin) and
// optionally polls it to completion. With -cluster the spec goes to the
// server's distributed fabric instead of its local campaign runner.
func cmdCampaign(ctx context.Context, c *client, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchctl campaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specFile = fs.String("spec", "", "campaign spec JSON file (\"-\" reads stdin)")
		wait     = fs.Bool("wait", false, "poll the campaign to completion")
		cluster  = fs.Bool("cluster", false, "submit to the distributed fabric (coordinator-mode marchd)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *specFile == "" {
		fmt.Fprintln(stderr, "marchctl campaign: need -spec")
		return exitUsage
	}
	var (
		body []byte
		err  error
	)
	if *specFile == "-" {
		body, err = io.ReadAll(os.Stdin)
	} else {
		body, err = os.ReadFile(*specFile)
	}
	if err != nil {
		fmt.Fprintln(stderr, "marchctl:", err)
		return exitUsage
	}
	if *cluster {
		return clusterCampaign(ctx, c, body, *wait, stdout, stderr)
	}
	resp, err := c.do(ctx, "POST", "/v1/campaigns", body)
	if err != nil {
		fmt.Fprintln(stderr, "marchctl:", err)
		return exitTransport
	}
	if resp.status != 200 && resp.status != 202 {
		fmt.Fprintf(stderr, "marchctl: campaign rejected: HTTP %d: %s\n", resp.status, apiErrorOf(resp))
		return exitRemote
	}
	var cv campaignView
	if err := json.Unmarshal(resp.body, &cv); err != nil {
		fmt.Fprintln(stderr, "marchctl: bad campaign body:", err)
		return exitRemote
	}
	if !*wait {
		fmt.Fprintln(stdout, string(resp.body))
		return exitOK
	}
	for !cv.terminal() {
		if err := sleepCtx(ctx, c.poll); err != nil {
			fmt.Fprintln(stderr, "marchctl:", err)
			return exitTransport
		}
		r, err := c.getJSON(ctx, "/v1/campaigns/"+cv.ID, &cv)
		if err != nil {
			fmt.Fprintln(stderr, "marchctl:", err)
			return exitTransport
		}
		if r.status != 200 {
			fmt.Fprintf(stderr, "marchctl: HTTP %d: %s\n", r.status, apiErrorOf(r))
			return exitRemote
		}
		resp = r
	}
	fmt.Fprintln(stdout, string(resp.body))
	if cv.Status != "done" {
		fmt.Fprintf(stderr, "marchctl: campaign %s %s: %s\n", cv.ID, cv.Status, cv.Error)
		return exitRemote
	}
	return exitOK
}

// sessionView mirrors the fabric coordinator's session status wire form
// (the fields marchctl reads; the full document is printed verbatim).
type sessionView struct {
	ID        string `json:"id"`
	Shards    int    `json:"shards"`
	Committed int    `json:"committed"`
	Done      bool   `json:"done"`
}

// clusterCampaign submits a spec to the distributed fabric and, with
// wait, polls the session until every shard is committed. The raw spec
// bytes are wrapped in the fabric submit envelope ({"spec": ...}) so the
// same spec file works for both local and cluster submission.
func clusterCampaign(ctx context.Context, c *client, spec []byte, wait bool, stdout, stderr io.Writer) int {
	body, err := json.Marshal(struct {
		Spec json.RawMessage `json:"spec"`
	}{json.RawMessage(spec)})
	if err != nil {
		fmt.Fprintln(stderr, "marchctl: bad spec file (not JSON):", err)
		return exitUsage
	}
	resp, err := c.do(ctx, "POST", "/v1/fabric/campaigns", body)
	if err != nil {
		fmt.Fprintln(stderr, "marchctl:", err)
		return exitTransport
	}
	if resp.status != 200 {
		fmt.Fprintf(stderr, "marchctl: cluster campaign rejected: HTTP %d: %s\n", resp.status, apiErrorOf(resp))
		return exitRemote
	}
	var sv sessionView
	if err := json.Unmarshal(resp.body, &sv); err != nil {
		fmt.Fprintln(stderr, "marchctl: bad session body:", err)
		return exitRemote
	}
	if !wait {
		fmt.Fprintln(stdout, string(resp.body))
		return exitOK
	}
	for !sv.Done {
		if err := sleepCtx(ctx, c.poll); err != nil {
			fmt.Fprintln(stderr, "marchctl:", err)
			return exitTransport
		}
		r, err := c.getJSON(ctx, "/v1/fabric/campaigns/"+sv.ID, &sv)
		if err != nil {
			fmt.Fprintln(stderr, "marchctl:", err)
			return exitTransport
		}
		if r.status != 200 {
			fmt.Fprintf(stderr, "marchctl: HTTP %d: %s\n", r.status, apiErrorOf(r))
			return exitRemote
		}
		resp = r
	}
	fmt.Fprintln(stdout, string(resp.body))
	return exitOK
}
