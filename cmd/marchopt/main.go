// Command marchopt runs the search-based march-test optimizer: starting
// from a known full-coverage test (a library test, an explicit sequence, or
// one generated on the spot), it searches element-level edits for a shorter
// test with the same coverage, and certifies the winner against the
// independent reference oracle before reporting it.
//
// Usage:
//
//	marchopt -list list2                          # optimize a generated seed
//	marchopt -list list2 -seed-test "March ABL1"  # optimize a library test
//	marchopt -list list1 -budget 5000 -seed 7     # bigger search, other rng
//	marchopt -list list2 -spec "c(w0) c(r0,w1) c(r1,w0)" -name "Mine"
//	marchopt -list list2 -bist-cells 1024         # break length ties by BIST cost
//
// Exit codes (for CI optimization gates):
//
//	0  optimization succeeded (winner certified at full coverage)
//	1  search, certification or output error
//	2  usage error (bad flags, unknown fault list or seed test)
//	3  no improvement: the winner matches the seed's length (still certified)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"marchgen"
	"marchgen/internal/buildinfo"
	"marchgen/internal/cliflag"
)

// Exit codes of the marchopt command.
const (
	exitOK        = 0 // optimization improved on the seed
	exitErr       = 1 // search, certification or output errors
	exitUsage     = 2 // flag / fault-list / seed errors
	exitNoImprove = 3 // certified winner, but no shorter than the seed
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process plumbing factored out so tests can drive
// the command end to end and assert on its exit code and output.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchopt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listName  = fs.String("list", "list2", "target fault list (list1, list2, simple, simple1, ...)")
		name      = fs.String("name", "March OPT", "name for the optimized test")
		seedTest  = fs.String("seed-test", "", "start from this library test (by name) instead of generating a seed")
		spec      = fs.String("spec", "", "start from this march sequence (conventional or ASCII notation)")
		seed      = fs.Int64("seed", 1, "rng seed; equal seeds reproduce the run bit-for-bit")
		budget    = fs.Int("budget", 2000, "candidate coverage-evaluation budget")
		beam      = fs.Int("beam", 4, "beam width (candidates kept per iteration)")
		restarts  = fs.Int("restarts", 3, "annealing restarts")
		bistCells = fs.Int("bist-cells", 0, "break length ties by BIST cycle cost on a memory of this many cells (0 = off)")
		ascii     = fs.Bool("ascii", false, "print tests with ASCII order markers instead of arrows")
		asJSON    = fs.Bool("json", false, "emit the winner, seed and statistics as JSON")
		quiet     = fs.Bool("quiet", false, "suppress the per-iteration progress line")
		lanes     = fs.String("lanes", "on", cliflag.LanesUsage)
		version   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	lanesOff, lanesErr := cliflag.ParseLanes(*lanes)
	if lanesErr != nil {
		fmt.Fprintln(stderr, "marchopt:", lanesErr)
		return exitUsage
	}
	if *version {
		buildinfo.Fprint(stdout, "marchopt")
		return exitOK
	}
	if *seedTest != "" && *spec != "" {
		fmt.Fprintln(stderr, "marchopt: -seed-test and -spec are mutually exclusive")
		return exitUsage
	}

	faults, err := marchgen.FaultListByName(*listName)
	if err != nil {
		fmt.Fprintln(stderr, "marchopt:", err)
		return exitUsage
	}

	opts := marchgen.OptimizeOptions{
		Name:      *name,
		Seed:      *seed,
		Budget:    *budget,
		BeamWidth: *beam,
		Restarts:  *restarts,
		BISTCells: *bistCells,
	}
	if lanesOff {
		opts.Config.DisableLanes = true
		opts.Generator.SearchConfig.DisableLanes = true
		opts.Generator.FinalConfig.DisableLanes = true
	}
	switch {
	case *seedTest != "":
		t, ok := marchgen.MarchByName(*seedTest)
		if !ok {
			fmt.Fprintf(stderr, "marchopt: unknown library test %q\n", *seedTest)
			return exitUsage
		}
		opts.SeedTest = &t
	case *spec != "":
		t, err := marchgen.ParseMarch(*name+" seed", *spec)
		if err != nil {
			fmt.Fprintln(stderr, "marchopt:", err)
			return exitUsage
		}
		opts.SeedTest = &t
	}
	if !*quiet && !*asJSON {
		lastBest := -1
		opts.OnProgress = func(p marchgen.OptimizeProgress) {
			if p.BestLength != lastBest {
				fmt.Fprintf(stdout, "  restart %d, %d evaluations: best %dn (T=%.2f)\n",
					p.Restart, p.Evaluations, p.BestLength, p.Temperature)
				lastBest = p.BestLength
			}
		}
	}

	res, err := marchgen.Optimize(faults, opts)
	if err != nil {
		fmt.Fprintln(stderr, "marchopt:", err)
		return exitErr
	}

	if *asJSON {
		out := struct {
			Test        marchgen.March  `json:"test"`
			Seed        marchgen.March  `json:"seed"`
			Report      marchgen.Report `json:"report"`
			Evaluations int             `json:"evaluations"`
			Improved    bool            `json:"improved"`
			Seconds     float64         `json:"search_seconds"`
		}{res.Test, res.Seed, res.Report, res.Stats.Evaluations, res.Stats.Improved, res.Stats.Duration.Seconds()}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "marchopt:", err)
			return exitErr
		}
	} else {
		render := marchgen.March.String
		if *ascii {
			render = marchgen.March.ASCII
		}
		fmt.Fprintf(stdout, "seed: %s (%s)\n  %s\n", res.Seed.Name, res.Seed.Complexity(), render(res.Seed))
		fmt.Fprintf(stdout, "winner: %s (%s, fault list %s)\n  %s\n",
			res.Test.Name, res.Test.Complexity(), *listName, render(res.Test))
		fmt.Fprintf(stdout, "coverage: %d/%d faults (certified, oracle agreed)\n",
			res.Report.Detected(), res.Report.Total())
		fmt.Fprintf(stdout, "search: %d evaluations, %d accepted, %d restart(s), %.3f s, move trace %s\n",
			res.Stats.Evaluations, res.Stats.Accepted, res.Stats.Restarts,
			res.Stats.Duration.Seconds(), res.Test.Prov.MoveTrace)
	}
	if !res.Stats.Improved {
		if !*asJSON {
			fmt.Fprintf(stdout, "no improvement over the %dn seed\n", res.Seed.Length())
		}
		return exitNoImprove
	}
	return exitOK
}
