package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestVersion(t *testing.T) {
	code, out, _ := runCmd("-version")
	if code != exitOK || !strings.HasPrefix(out, "marchopt ") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestOptimizeLibrarySeed(t *testing.T) {
	code, out, stderr := runCmd("-list", "list2", "-seed-test", "March ABL1",
		"-budget", "300", "-ascii", "-quiet")
	if code != exitOK {
		t.Fatalf("exit=%d stderr=%q out:\n%s", code, stderr, out)
	}
	for _, want := range []string{
		"seed: March ABL1 (9n)",
		"winner: March OPT (",
		"coverage: 18/18 faults (certified, oracle agreed)",
		"move trace",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONOutputDeterministic(t *testing.T) {
	args := []string{"-list", "list2", "-seed-test", "March ABL1",
		"-budget", "200", "-seed", "5", "-json"}
	code1, out1, _ := runCmd(args...)
	code2, out2, _ := runCmd(args...)
	if code1 != code2 {
		t.Fatalf("codes differ: %d vs %d", code1, code2)
	}
	var a, b struct {
		Test struct {
			Spec   string `json:"spec"`
			Length int    `json:"length"`
			Origin string `json:"origin"`
			Prov   struct {
				MoveTrace string `json:"move_trace"`
			} `json:"provenance"`
		} `json:"test"`
		Improved bool `json:"improved"`
	}
	if err := json.Unmarshal([]byte(out1), &a); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out1)
	}
	if err := json.Unmarshal([]byte(out2), &b); err != nil {
		t.Fatal(err)
	}
	if a.Test.Spec != b.Test.Spec || a.Test.Prov.MoveTrace != b.Test.Prov.MoveTrace {
		t.Errorf("same-seed runs differ:\n%s\n%s", out1, out2)
	}
	if a.Test.Origin != "optimized" {
		t.Errorf("origin = %q", a.Test.Origin)
	}
	if a.Test.Length > 9 {
		t.Errorf("winner %dn, want ≤ the paper's 9n", a.Test.Length)
	}
}

func TestExplicitSpecSeed(t *testing.T) {
	// A padded (redundant) seed must come back shorter.
	code, out, stderr := runCmd("-list", "list2",
		"-spec", "c(w0) c(w0,r0,r0,w1) c(w1,r1,r1,w0) c(r0,r0)",
		"-budget", "300", "-quiet")
	if code != exitOK {
		t.Fatalf("exit=%d stderr=%q out:\n%s", code, stderr, out)
	}
	if !strings.Contains(out, "(11n)") {
		t.Errorf("seed complexity missing:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCmd("-list", "nope"); code != exitUsage {
		t.Errorf("unknown list: exit=%d", code)
	}
	if code, _, _ := runCmd("-seed-test", "No Such March"); code != exitUsage {
		t.Errorf("unknown seed test: exit=%d", code)
	}
	if code, _, _ := runCmd("-spec", "c(r9)"); code != exitUsage {
		t.Errorf("bad spec: exit=%d", code)
	}
	if code, _, _ := runCmd("-seed-test", "March ABL1", "-spec", "c(w0)"); code != exitUsage {
		t.Errorf("seed-test+spec: exit=%d", code)
	}
	if code, _, _ := runCmd("-lanes", "maybe"); code != exitUsage {
		t.Errorf("bad lanes: exit=%d", code)
	}
}

// A seed that is already optimal for the search's budget reports
// exitNoImprove, not failure.
func TestNoImprovementExitCode(t *testing.T) {
	// The generator's own list2 result (7n) is already at the frontier this
	// budget can reach; optimizing it again finds nothing shorter.
	code, out, stderr := runCmd("-list", "list2",
		"-spec", "c(w0) ^(r0,r0,w1,w1,r1,r1)", "-budget", "200", "-quiet")
	if code != exitNoImprove {
		t.Fatalf("exit=%d stderr=%q out:\n%s", code, stderr, out)
	}
	if !strings.Contains(out, "no improvement") {
		t.Errorf("output:\n%s", out)
	}
}
