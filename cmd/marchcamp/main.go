// Command marchcamp runs batch campaigns: declarative parameter sweeps over
// the march generator (cross-product of fault lists, generator profiles,
// order constraints, memory sizes, word widths and array topologies),
// executed as a deterministic shard plan with durable checkpoints. A killed
// run resumes exactly where it stopped and yields a result set
// byte-identical to an uninterrupted run. See DESIGN.md §9.
//
// Usage:
//
//	marchcamp example > sweep.json        # starter spec to edit
//	marchcamp plan -spec sweep.json       # campaign id, units, shards
//	marchcamp run -spec sweep.json -dir campaigns/
//	marchcamp run -spec sweep.json -dir campaigns/ -resume
//	marchcamp report -dir campaigns/      # coverage/length matrix
//
// Exit codes:
//
//	0  success
//	1  run, store or report failure (including an interrupted run)
//	2  usage error (bad flags, unreadable or invalid spec)
//	4  report: the result set is incomplete — the campaign has shards not
//	   yet committed (interrupted run, or a distributed run still in
//	   flight). The partial report is still printed; scripts gating on a
//	   finished sweep must treat 4 as "come back later", not as data.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"marchgen/internal/buildinfo"
	"marchgen/internal/campaign"
	"marchgen/internal/cliflag"
	"marchgen/internal/store"
)

// Exit codes of the marchcamp command.
const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
	// exitIncomplete: report ran on a campaign whose checkpoint commits
	// fewer shards than its plan — the printed matrix is partial.
	exitIncomplete = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: marchcamp <example|plan|run|report> [flags]  (or -version)")
	fmt.Fprintln(stderr, "  example              print a starter campaign spec")
	fmt.Fprintln(stderr, "  plan   -spec FILE    show the deterministic shard plan")
	fmt.Fprintln(stderr, "  run    -spec FILE -dir DIR [-resume] [-workers N] [-quiet]")
	fmt.Fprintln(stderr, "  report -dir DIR [-id CAMPAIGN]")
	return exitUsage
}

// run is main with the process plumbing factored out so tests can drive
// the command end to end and assert on its exit code and output.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	switch args[0] {
	case "-version", "--version", "version":
		buildinfo.Fprint(stdout, "marchcamp")
		return exitOK
	case "example":
		return runExample(stdout)
	case "plan":
		return runPlan(args[1:], stdout, stderr)
	case "run":
		return runRun(args[1:], stdout, stderr)
	case "report":
		return runReport(args[1:], stdout, stderr)
	}
	fmt.Fprintf(stderr, "marchcamp: unknown subcommand %q\n", args[0])
	return usage(stderr)
}

// exampleSpec is the starter sweep `marchcamp example` prints: the paper's
// Table 1 corner (list1/list2 at the default configuration) widened by one
// step along each axis, plus a small optimizer budget sweep for the
// length-vs-budget frontier (budget 0 keeps the unoptimized baseline row).
func exampleSpec() campaign.Spec {
	return campaign.Spec{
		Name:       "table1-sweep",
		Lists:      []string{"list2", "list1"},
		Profiles:   []string{campaign.ProfileStandard, campaign.ProfileAggressive},
		Orders:     []string{"free", "up"},
		Sizes:      []int{4},
		Widths:     []int{1, 4},
		Topologies: []string{"", "8x8"},
		Optimize:   []campaign.OptAxis{{}, {Budget: 200}, {Budget: 400}},
		ShardSize:  4,
	}
}

func runExample(stdout io.Writer) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(exampleSpec())
	return exitOK
}

// loadSpec reads and validates a campaign spec file.
func loadSpec(path string, stderr io.Writer) (campaign.Spec, bool) {
	var spec campaign.Spec
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "marchcamp:", err)
		return spec, false
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		fmt.Fprintf(stderr, "marchcamp: spec %s: %v\n", path, err)
		return spec, false
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(stderr, "marchcamp:", err)
		return spec, false
	}
	return spec, true
}

func runPlan(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchcamp plan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "campaign spec file (JSON)")
	if err := fs.Parse(args); err != nil || *specPath == "" {
		if *specPath == "" && err == nil {
			fmt.Fprintln(stderr, "marchcamp plan: need -spec")
		}
		return exitUsage
	}
	spec, ok := loadSpec(*specPath, stderr)
	if !ok {
		return exitUsage
	}
	shards := campaign.Plan(spec)
	fmt.Fprintf(stdout, "campaign %s (%s)\n", spec.ID(), spec.Hash())
	fmt.Fprintf(stdout, "units %d, shards %d\n", spec.Units(), len(shards))
	for _, sh := range shards {
		for _, u := range sh.Units {
			fmt.Fprintf(stdout, "  shard %3d  unit %3d  %s  list=%s profile=%s order=%s n=%d w=%d p=%s%s topo=%s opt=%s\n",
				sh.ID, u.Seq, u.ID(), u.List, u.Profile, u.Order, u.Size, u.Width,
				portsOrOne(u), transparentMark(u), topoOrDash(u.Topology), optOrDash(u))
		}
	}
	return exitOK
}

func topoOrDash(t string) string {
	if t == "" {
		return "-"
	}
	return t
}

func optOrDash(u campaign.Unit) string {
	if u.OptBudget == 0 {
		return "-"
	}
	s := fmt.Sprintf("b%d/s%d", u.OptBudget, u.OptSeed)
	if u.OptBISTWeight > 0 {
		s += fmt.Sprintf("/w%g", u.OptBISTWeight)
	}
	return s
}

func portsOrOne(u campaign.Unit) string {
	if u.Ports <= 1 {
		return "1"
	}
	return fmt.Sprint(u.Ports)
}

func transparentMark(u campaign.Unit) string {
	if u.Transparent {
		return " transparent"
	}
	return ""
}

func runRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchcamp run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath = fs.String("spec", "", "campaign spec file (JSON)")
		dir      = fs.String("dir", "", "store root directory (one subdirectory per campaign)")
		resume   = fs.Bool("resume", false, "continue a previously interrupted campaign")
		workers  = fs.Int("workers", 0, "concurrent shards (0 = GOMAXPROCS)")
		lanes    = fs.String("lanes", "on", cliflag.LanesUsage)
		quiet    = fs.Bool("quiet", false, "suppress per-shard progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	lanesOff, lanesErr := cliflag.ParseLanes(*lanes)
	if lanesErr != nil {
		fmt.Fprintln(stderr, "marchcamp run:", lanesErr)
		return exitUsage
	}
	if *specPath == "" || *dir == "" {
		fmt.Fprintln(stderr, "marchcamp run: need -spec and -dir")
		return exitUsage
	}
	spec, ok := loadSpec(*specPath, stderr)
	if !ok {
		return exitUsage
	}

	// SIGINT/SIGTERM cancel the run; the store keeps its last checkpoint
	// and a later -resume continues from it (a SIGKILL behaves the same,
	// minus the polite exit message).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := campaign.RunOptions{Workers: *workers, Resume: *resume, DisableLanes: lanesOff}
	if !*quiet {
		opts.OnEvent = func(ev campaign.Event) {
			if ev.Kind == campaign.EventShardCommitted {
				fmt.Fprintf(stderr, "marchcamp: shard %d committed (%d total)\n", ev.Shard, ev.Committed)
			}
		}
	}
	sum, err := campaign.Run(ctx, spec, *dir, opts)
	switch {
	case errors.Is(err, campaign.ErrNeedsResume):
		fmt.Fprintln(stderr, "marchcamp:", err)
		return exitError
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(stderr, "marchcamp: interrupted; rerun with -resume to continue\n")
		return exitError
	case err != nil:
		fmt.Fprintln(stderr, "marchcamp:", err)
		return exitError
	}
	fmt.Fprintf(stdout, "campaign %s complete: %d units in %d shards (%d resumed, %d unit errors)\n",
		sum.ID, sum.Units, sum.Shards, sum.ResumedFrom, sum.UnitErrors)
	fmt.Fprintf(stdout, "results: %s\n", sum.Dir)
	return exitOK
}

func runReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchcamp report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir = fs.String("dir", "", "store root directory (as passed to run)")
		id  = fs.String("id", "", "campaign id (needed when the root holds several campaigns)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "marchcamp report: need -dir")
		return exitUsage
	}
	campDir, ok := resolveCampaignDir(*dir, *id, stderr)
	if !ok {
		return exitError
	}
	if err := campaign.Report(stdout, campDir); err != nil {
		fmt.Fprintln(stderr, "marchcamp:", err)
		return exitError
	}
	// Completeness gate: the report above renders whatever is committed,
	// but a partial result set must not exit 0 — CI recipes pipe the
	// matrix into papers and dashboards and need a machine-checkable
	// "this sweep is finished" signal (exit 4 otherwise).
	sf, err := campaign.LoadSpecFile(campDir)
	if err != nil {
		fmt.Fprintln(stderr, "marchcamp:", err)
		return exitError
	}
	cp, err := store.ReadCheckpoint(campDir)
	if err != nil {
		fmt.Fprintln(stderr, "marchcamp:", err)
		return exitError
	}
	if planned := len(campaign.Plan(sf.Spec)); cp.Shards < planned {
		fmt.Fprintf(stderr, "marchcamp: campaign %s incomplete: %d/%d shards committed (resume the run, or wait for the cluster to finish)\n",
			sf.ID, cp.Shards, planned)
		return exitIncomplete
	}
	return exitOK
}

// resolveCampaignDir finds the campaign directory under root: the named id
// if given, the single campaign if the root holds exactly one, an error
// listing the candidates otherwise.
func resolveCampaignDir(root, id string, stderr io.Writer) (string, bool) {
	if id != "" {
		return filepath.Join(root, id), true
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		fmt.Fprintln(stderr, "marchcamp:", err)
		return "", false
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "c-") {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	switch len(ids) {
	case 1:
		return filepath.Join(root, ids[0]), true
	case 0:
		fmt.Fprintf(stderr, "marchcamp: no campaigns under %s\n", root)
		return "", false
	}
	fmt.Fprintf(stderr, "marchcamp: %d campaigns under %s; pick one with -id: %s\n",
		len(ids), root, strings.Join(ids, " "))
	return "", false
}
