package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"marchgen/internal/campaign"
	"marchgen/internal/store"
)

func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// writeSpec drops a minimal one-unit spec file and returns its path.
func writeSpec(t *testing.T, spec any) string {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVersion(t *testing.T) {
	code, out, _ := runCmd("-version")
	if code != exitOK || !strings.HasPrefix(out, "marchcamp ") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                          // no subcommand
		{"frobnicate"},              // unknown subcommand
		{"plan"},                    // plan without -spec
		{"run", "-spec", "nope"},    // run without -dir
		{"run", "-dir", "d"},        // run without -spec
		{"report"},                  // report without -dir
		{"plan", "-spec", "/nope1"}, // unreadable spec
	}
	for _, args := range cases {
		if code, _, _ := runCmd(args...); code != exitUsage {
			t.Errorf("args %v: exit = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestExampleIsAValidSpec(t *testing.T) {
	code, out, _ := runCmd("example")
	if code != exitOK {
		t.Fatalf("exit = %d", code)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	code, planOut, stderr := runCmd("plan", "-spec", path)
	if code != exitOK {
		t.Fatalf("plan of the example spec failed: %s", stderr)
	}
	if !strings.Contains(planOut, "campaign c-") || !strings.Contains(planOut, "shard") {
		t.Fatalf("plan output:\n%s", planOut)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	path := writeSpec(t, map[string]any{"lists": []string{"no-such-list"}})
	if code, _, stderr := runCmd("plan", "-spec", path); code != exitUsage || !strings.Contains(stderr, "unknown fault list") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	unknown := writeSpec(t, map[string]any{"lists": []string{"list2"}, "bogus_field": 1})
	if code, _, _ := runCmd("plan", "-spec", unknown); code != exitUsage {
		t.Fatalf("unknown spec field accepted")
	}
}

func TestRunAndReportRoundTrip(t *testing.T) {
	spec := writeSpec(t, map[string]any{"name": "cli-smoke", "lists": []string{"list2"}})
	dir := t.TempDir()

	code, out, stderr := runCmd("run", "-spec", spec, "-dir", dir, "-quiet")
	if code != exitOK {
		t.Fatalf("run exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "complete: 1 units in 1 shards") {
		t.Fatalf("run output:\n%s", out)
	}

	// Re-running the identical spec is an idempotent no-op.
	if code, out, _ = runCmd("run", "-spec", spec, "-dir", dir, "-quiet"); code != exitOK {
		t.Fatalf("idempotent rerun exit = %d\n%s", code, out)
	}

	code, rep, stderr := runCmd("report", "-dir", dir)
	if code != exitOK {
		t.Fatalf("report exit = %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"cli-smoke", "list2", "1/1 units", "Generated tests:"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestReportExitsIncompleteOnPartialResults pins the completeness gate:
// a campaign with only some of its shards committed still prints the
// partial matrix, but exits 4 so scripts cannot mistake a half-finished
// sweep (interrupted run, cluster still in flight) for final data.
func TestReportExitsIncompleteOnPartialResults(t *testing.T) {
	spec := campaign.Spec{Name: "partial", Lists: []string{"list2"}, Orders: []string{"up", "down"}, ShardSize: 1}
	spec = spec.Canonical()
	root := t.TempDir()
	dir := spec.Dir(root)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := campaign.EnsureSpecFile(nil, dir, spec); err != nil {
		t.Fatal(err)
	}
	plan := campaign.Plan(spec)
	if len(plan) != 2 {
		t.Fatalf("plan has %d shards, want 2", len(plan))
	}
	st, err := store.Open(dir, spec.Hash())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := campaign.ExecuteShard(context.Background(), plan[0], campaign.NewMemo(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	code, out, stderr := runCmd("report", "-dir", root)
	if code != exitIncomplete {
		t.Fatalf("partial report exit = %d, want %d; stderr:\n%s", code, exitIncomplete, stderr)
	}
	if !strings.Contains(out, "partial") {
		t.Fatalf("partial matrix was not printed:\n%s", out)
	}
	if !strings.Contains(stderr, "1/2 shards") {
		t.Fatalf("stderr does not count the missing shards: %q", stderr)
	}

	// Committing the second shard turns the same invocation into exit 0.
	st, err = store.Open(dir, spec.Hash())
	if err != nil {
		t.Fatal(err)
	}
	recs, err = campaign.ExecuteShard(context.Background(), plan[1], campaign.NewMemo(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(2); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runCmd("report", "-dir", root); code != exitOK {
		t.Fatalf("complete report exit = %d, stderr:\n%s", code, stderr)
	}
}

// TestReportMixedAxesMatrix pins the report path on a sweep that mixes every
// axis — widths, ports, transparent mode and a BIST-weighted optimizer point
// — in one campaign: the completeness gate must still drive the exit code
// (4 while shards are missing, 0 once every shard is committed), and the
// finished matrix must read the per-unit axis results into the word,
// transparent, mport and BIST columns instead of dashes.
func TestReportMixedAxesMatrix(t *testing.T) {
	spec := campaign.Spec{
		Name:        "axes-matrix",
		Lists:       []string{"list1"},
		Widths:      []int{1, 4},
		Ports:       []int{1, 2},
		Transparent: []bool{false, true},
		Optimize:    []campaign.OptAxis{{}, {Budget: 150, BISTWeight: 0.5}},
		ShardSize:   8,
	}
	spec = spec.Canonical()
	root := t.TempDir()
	dir := spec.Dir(root)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := campaign.EnsureSpecFile(nil, dir, spec); err != nil {
		t.Fatal(err)
	}
	plan := campaign.Plan(spec)
	if len(plan) != 2 || spec.Units() != 16 {
		t.Fatalf("plan: %d shards, %d units, want 2 and 16", len(plan), spec.Units())
	}

	memo := campaign.NewMemo()
	commit := func(sh campaign.Shard, seq int) {
		t.Helper()
		st, err := store.Open(dir, spec.Hash())
		if err != nil {
			t.Fatal(err)
		}
		recs, err := campaign.ExecuteShard(context.Background(), sh, memo, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := st.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Commit(seq); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	commit(plan[0], 1)
	if code, _, stderr := runCmd("report", "-dir", root); code != exitIncomplete {
		t.Fatalf("half-committed mixed-axes report exit = %d, want %d; stderr:\n%s",
			code, exitIncomplete, stderr)
	}

	commit(plan[1], 2)
	code, out, stderr := runCmd("report", "-dir", root)
	if code != exitOK {
		t.Fatalf("complete report exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "16/16 units") {
		t.Fatalf("report does not count 16/16 units:\n%s", out)
	}
	// No unit may have failed: a transparent-ineligible or port-invalid
	// combination would surface in the Error column.
	if strings.Contains(out, "transform") || strings.Contains(out, "error") {
		t.Fatalf("matrix contains unit errors:\n%s", out)
	}
	// Axis columns are populated from the per-unit results, not dashes:
	// the word and transparent columns as detected/faults fractions, the
	// mport column as the lifted single-port coverage of the weak-fault
	// catalog, and the optimizer's BIST-cycle override with its * marker.
	wordFrac := regexp.MustCompile(`\b\d+/384\b`) // width-4 intra-word testable faults
	if !wordFrac.MatchString(out) {
		t.Fatalf("no word-axis fraction in the matrix:\n%s", out)
	}
	if !strings.Contains(out, "/38") {
		t.Fatalf("no mport-axis fraction (weak-fault catalog) in the matrix:\n%s", out)
	}
	if !regexp.MustCompile(`\d+\*`).MatchString(out) {
		t.Fatalf("no BIST-weighted optimizer cycle cell in the matrix:\n%s", out)
	}
	// The frontier table renders the weighted sweep point with its weight.
	if !strings.Contains(out, "frontier") || !strings.Contains(out, "0.5") {
		t.Fatalf("frontier table missing the weighted point:\n%s", out)
	}
}

func TestReportAmbiguousRootNeedsID(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"alpha", "beta"} {
		spec := writeSpec(t, map[string]any{"name": name, "lists": []string{"list2"}, "sizes": []int{3 + len(name)%2}})
		if code, _, stderr := runCmd("run", "-spec", spec, "-dir", dir, "-quiet"); code != exitOK {
			t.Fatalf("run %s: %s", name, stderr)
		}
	}
	code, _, stderr := runCmd("report", "-dir", dir)
	if code != exitError || !strings.Contains(stderr, "-id") {
		t.Fatalf("ambiguous report: code=%d stderr=%q", code, stderr)
	}
}
