package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestAgreeOnLibraryList(t *testing.T) {
	code, out, errOut := runCmd(t, "-list", "list2", "-n", "5")
	if code != exitAgree {
		t.Fatalf("exit %d, want %d; stderr: %s", code, exitAgree, errOut)
	}
	if !strings.Contains(out, "0 divergences") {
		t.Fatalf("summary missing from output: %q", out)
	}
}

func TestSingleTestAndSpec(t *testing.T) {
	if code, _, errOut := runCmd(t, "-march", "March SS", "-list", "list2"); code != exitAgree {
		t.Fatalf("-march: exit %d; stderr: %s", code, errOut)
	}
	if code, _, errOut := runCmd(t, "-spec", "c(w0) ^(r0,w1) v(r1,w0)", "-list", "simple"); code != exitAgree {
		t.Fatalf("-spec: exit %d; stderr: %s", code, errOut)
	}
}

func TestPropsAndMinimize(t *testing.T) {
	if code, _, errOut := runCmd(t, "-march", "MATS+", "-list", "list2", "-props"); code != exitAgree {
		t.Fatalf("-props: exit %d; stderr: %s", code, errOut)
	}
	if code, out, errOut := runCmd(t, "-list", "list2", "-march", "MATS+", "-minimize"); code != exitAgree {
		t.Fatalf("-minimize: exit %d; stdout: %s stderr: %s", code, out, errOut)
	}
}

// TestAxisCrossChecks pins the -width/-ports differential wall: the word and
// mport verdict paths of a test are cross-checked against the oracle as extra
// pairs, and agreement keeps the zero exit.
func TestAxisCrossChecks(t *testing.T) {
	code, out, errOut := runCmd(t, "-march", "March SS", "-list", "list2", "-width", "4", "-ports", "2")
	if code != exitAgree {
		t.Fatalf("exit %d; stdout: %s stderr: %s", code, out, errOut)
	}
	// One bit-level pair plus the word and mport axis checks.
	if !strings.Contains(out, "3 pairs checked") || !strings.Contains(out, "0 divergences") {
		t.Fatalf("summary does not count the axis pairs:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-list", "nope"},
		{"-march", "nope"},
		{"-spec", "not a march test"},
		{"-spec", "c(r0,w1)"}, // inconsistent: reads 0 from an unwritten cell, see CheckConsistency
		{"-badflag"},
	}
	for _, args := range cases {
		if code, _, _ := runCmd(t, args...); code != exitUsage {
			t.Errorf("args %v: exit %d, want %d", args, code, exitUsage)
		}
	}
}

func TestSmallerMemoryStillAgrees(t *testing.T) {
	// Size 3 makes three-cell faults unplaceable: both simulators must
	// error, which counts as agreement.
	code, out, errOut := runCmd(t, "-list", "list1", "-march", "March SL", "-size", "3")
	if code != exitAgree {
		t.Fatalf("exit %d; stdout: %s stderr: %s", code, out, errOut)
	}
}

func TestVersionFlag(t *testing.T) {
	code, out, _ := runCmd(t, "-version")
	if code != exitAgree || out == "" {
		t.Fatalf("exit %d, output %q", code, out)
	}
}
