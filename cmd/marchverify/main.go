// Command marchverify cross-checks the production fault simulator
// (internal/sim) against the independent reference oracle (internal/oracle):
// the same march tests and fault lists are simulated by both implementations
// — which share no code on the verdict path — and every divergence in
// detection verdict, missed-fault set or witness trace is reported. It is
// the repository's trust anchor: a clean run means the coverage numbers of
// Table 1 do not rest on a single simulator's bugs.
//
// Usage:
//
//	marchverify                           # library tests × every fault list
//	marchverify -list list2               # restrict to one fault list
//	marchverify -march "March SS"         # one library test
//	marchverify -spec "c(w0) ^(r0,w1)"    # one inline test
//	marchverify -seed 7 -n 1000           # add 1000 seeded random op streams
//	marchverify -props                    # also check metamorphic properties
//	marchverify -minimize                 # also check minimization keeps coverage
//
// Exit codes (for CI verification gates):
//
//	0  the two simulators agree on every checked pair (and every checked
//	   metamorphic property holds)
//	1  at least one divergence or property violation
//	2  usage error (bad flags, unknown march test or fault list,
//	   inconsistent march test)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"marchgen/internal/buildinfo"
	"marchgen/internal/cliflag"
	"marchgen/internal/core"
	"marchgen/internal/faultlist"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/mport"
	"marchgen/internal/oracle"
	"marchgen/internal/sim"
	"marchgen/internal/word"
)

// Exit codes of the marchverify command.
const (
	exitAgree   = 0 // the simulators agree everywhere
	exitDiverge = 1 // at least one divergence or property violation
	exitUsage   = 2 // flag / march / fault-list errors
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process plumbing factored out so tests can drive the
// command end to end and assert on its exit code and output.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		marchName  = fs.String("march", "", "restrict to one library march test")
		spec       = fs.String("spec", "", "verify an inline march test in notation form")
		listName   = fs.String("list", "", "restrict to one fault list (default: every list)")
		size       = fs.Int("size", 4, "memory size in cells")
		exhaustive = fs.Bool("exhaustive", true, "expand every ⇕ element into both concrete orders")
		seed       = fs.Int64("seed", 1, "seed for the random op streams")
		n          = fs.Int("n", 0, "number of seeded random op streams to cross-check (rotated across the lists)")
		props      = fs.Bool("props", false, "also check the metamorphic properties on every pair")
		width      = fs.Int("width", 0, "also cross-check each test's word-path verdicts (internal/word vs oracle) at this word width")
		ports      = fs.Int("ports", 0, "port count: 2 also cross-checks each test's mport-path verdicts (internal/mport vs oracle)")
		minimize   = fs.Bool("minimize", false, "also generate per list with and without minimization and require both Full under the oracle")
		lanes      = fs.String("lanes", "on", cliflag.LanesUsage)
		version    = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	lanesOff, lanesErr := cliflag.ParseLanes(*lanes)
	if lanesErr != nil {
		fmt.Fprintln(stderr, "marchverify:", lanesErr)
		return exitUsage
	}
	if *version {
		buildinfo.Fprint(stdout, "marchverify")
		return exitAgree
	}

	lists := faultlist.Names()
	if *listName != "" {
		if _, ok := faultlist.ByName(*listName); !ok {
			fmt.Fprintf(stderr, "marchverify: unknown fault list %q (known: %v)\n", *listName, faultlist.Names())
			return exitUsage
		}
		lists = []string{*listName}
	}

	var tests []march.Test
	switch {
	case *spec != "":
		name := *marchName
		if name == "" {
			name = "custom"
		}
		t, err := march.Parse(name, *spec)
		if err != nil {
			fmt.Fprintln(stderr, "marchverify:", err)
			return exitUsage
		}
		tests = []march.Test{t}
	case *marchName != "":
		t, ok := march.ByName(*marchName)
		if !ok {
			fmt.Fprintf(stderr, "marchverify: unknown march test %q\n", *marchName)
			return exitUsage
		}
		tests = []march.Test{t}
	default:
		tests = march.Lib()
	}
	for _, t := range tests {
		if err := t.CheckConsistency(); err != nil {
			fmt.Fprintf(stderr, "marchverify: inconsistent march test %q: %v\n", t.Name, err)
			return exitUsage
		}
	}

	cfg := sim.Config{Size: *size, ExhaustiveOrders: *exhaustive, DisableLanes: lanesOff}
	v := verifier{cfg: cfg, props: *props, stdout: stdout}

	// Sweep: every selected test against every selected list.
	for _, list := range lists {
		faults, _ := faultlist.ByName(list)
		for _, t := range tests {
			v.checkPair(t, list, faults)
		}
	}

	// Random op streams, rotated across the lists so the stream count —
	// not the cross-product — bounds the work.
	if *n > 0 {
		streams := oracle.RandomTests(*seed, *n)
		for i, t := range streams {
			list := lists[i%len(lists)]
			faults, _ := faultlist.ByName(list)
			v.checkPair(t, list, faults)
		}
	}

	if *minimize {
		for _, list := range lists {
			faults, _ := faultlist.ByName(list)
			v.checkMinimize(list, faults)
		}
	}

	// Axis cross-checks are per test (the word and mport fault spaces are
	// fixed by width/port count, not by the fault list).
	if *width > 1 || *ports > 1 {
		for _, t := range tests {
			if *width > 1 {
				v.checkWord(t, *width)
			}
			if *ports > 1 {
				v.checkMport(t)
			}
		}
	}

	fmt.Fprintf(stdout, "marchverify: %d pairs checked (%d lists, %d tests, %d random streams): %d divergences, %d property violations\n",
		v.pairs, len(lists), len(tests), *n, v.divergences, v.violations)
	if v.divergences > 0 || v.violations > 0 {
		return exitDiverge
	}
	return exitAgree
}

// verifier accumulates cross-check results across pairs.
type verifier struct {
	cfg         sim.Config
	props       bool
	stdout      io.Writer
	pairs       int
	divergences int
	violations  int
}

// checkPair cross-checks one (test, fault list) pair and, when enabled, the
// metamorphic property suite on top.
func (v *verifier) checkPair(t march.Test, list string, faults []linked.Fault) {
	v.pairs++
	for _, d := range oracle.CrossCheck(t, faults, v.cfg) {
		v.divergences++
		fmt.Fprintf(v.stdout, "DIVERGENCE %s vs %s: %s\n", t.Name, list, d)
	}
	if !v.props {
		return
	}
	violations, err := oracle.CheckProperties(t, faults, oracle.ConfigFromSim(v.cfg))
	if err != nil {
		// Property-engine errors (a transformed variant the oracle cannot
		// simulate) are findings, not usage errors: report and count them.
		v.violations++
		fmt.Fprintf(v.stdout, "VIOLATION %s vs %s: property engine: %v\n", t.Name, list, err)
		return
	}
	for _, viol := range violations {
		v.violations++
		fmt.Fprintf(v.stdout, "VIOLATION %s vs %s: %s\n", t.Name, list, viol)
	}
}

// checkWord cross-checks one test's word-path verdicts: internal/word versus
// the mask-based reference in internal/oracle, over the march-testable
// intra-word faults of the given width.
func (v *verifier) checkWord(t march.Test, width int) {
	v.pairs++
	bgs, err := word.Backgrounds(width)
	if err != nil {
		v.violations++
		fmt.Fprintf(v.stdout, "VIOLATION word w=%d: %v\n", width, err)
		return
	}
	diffs, err := oracle.CrossCheckWord(t, word.TestableIntraWordFaults(width), bgs, word.Config{Words: 2, Width: width})
	if err != nil {
		v.violations++
		fmt.Fprintf(v.stdout, "VIOLATION word %s w=%d: %v\n", t.Name, width, err)
		return
	}
	for _, d := range diffs {
		v.divergences++
		fmt.Fprintf(v.stdout, "DIVERGENCE word %s w=%d: %s\n", t.Name, width, d)
	}
}

// checkMport cross-checks one test's mport-path verdicts on its lifted (port
// B idle) form: internal/mport versus the event-based oracle reference, over
// the two-port weak-fault catalog.
func (v *verifier) checkMport(t march.Test) {
	v.pairs++
	lifted, err := mport.Lift(t)
	if err != nil {
		v.violations++
		fmt.Fprintf(v.stdout, "VIOLATION mport lift %s: %v\n", t.Name, err)
		return
	}
	diffs, err := oracle.CrossCheckMport(lifted, mport.Catalog(), mport.Config{})
	if err != nil {
		v.violations++
		fmt.Fprintf(v.stdout, "VIOLATION mport %s: %v\n", t.Name, err)
		return
	}
	for _, d := range diffs {
		v.divergences++
		fmt.Fprintf(v.stdout, "DIVERGENCE mport %s: %s\n", t.Name, d)
	}
}

// checkMinimize checks the generation-level invariant that the minimization
// phase never removes coverage: generating with and without minimization
// must both yield tests the oracle certifies Full on the list.
func (v *verifier) checkMinimize(list string, faults []linked.Fault) {
	v.pairs++
	for _, skip := range []bool{false, true} {
		label := "minimized"
		if skip {
			label = "unminimized"
		}
		res, err := core.Generate(faults, core.Options{
			Name:         fmt.Sprintf("GEN(%s,%s)", list, label),
			SkipMinimize: skip,
			FinalConfig:  v.cfg,
		})
		if err != nil {
			v.violations++
			fmt.Fprintf(v.stdout, "VIOLATION generate %s for %s: %v\n", label, list, err)
			continue
		}
		rep := oracle.Simulate(res.Test, faults, oracle.ConfigFromSim(v.cfg))
		if err := rep.Err(); err != nil {
			v.violations++
			fmt.Fprintf(v.stdout, "VIOLATION oracle on %s %s: %v\n", label, list, err)
			continue
		}
		if !rep.Full() {
			v.violations++
			fmt.Fprintf(v.stdout, "VIOLATION %s test for %s not Full under the oracle: %d/%d detected\n",
				label, list, rep.Detected(), rep.Total())
		}
		for _, d := range oracle.CrossCheck(res.Test, faults, v.cfg) {
			v.divergences++
			fmt.Fprintf(v.stdout, "DIVERGENCE generated(%s) vs %s: %s\n", label, list, d)
		}
	}
}
