// Command marchd serves the march generator and fault simulator as a
// long-lived HTTP JSON service: an async job engine with a bounded worker
// pool for generation, a content-addressed LRU result cache, structured
// request logging, /healthz and /metrics. See DESIGN.md §8 and the README
// quick-start for the API.
//
// Campaigns: with -data pointing at a durable directory, POST /v1/campaigns
// runs batch sweeps through the campaign engine (internal/campaign); an
// interrupted campaign resumes from its checkpoint on re-POST, across
// restarts of the daemon.
//
// Overload (DESIGN.md §15): an admission controller shapes traffic by
// request class — expensive cold generates/optimizes/campaigns shed first
// with 429 + Retry-After while cache hits, library reads and job polling
// stay green; /healthz reports ok|degraded|overloaded with reasons. With
// -data (or -cache-dir) the result cache persists and warm-starts, so a
// restarted node serves its working set immediately.
//
// Cluster mode (DESIGN.md §13): -coordinator additionally serves the
// distributed campaign fabric under /v1/fabric/*, leasing shard ranges of
// campaigns submitted to POST /v1/fabric/campaigns out to peers; -join URL
// turns this instance into a fabric worker pulling leases from that
// coordinator (the two can be combined — a coordinator that also works).
//
// Usage:
//
//	marchd -addr :8080
//	marchd -addr 127.0.0.1:0 -workers 4 -cache 256
//	marchd -addr :8080 -data /var/lib/marchd/campaigns
//	marchd -addr :8080 -data /var/lib/marchd/campaigns -coordinator
//	marchd -addr :8081 -join http://coordinator:8080
//
// Shutdown: SIGINT/SIGTERM stops accepting connections, drains in-flight
// jobs up to -drain-timeout, and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"marchgen/internal/buildinfo"
	"marchgen/internal/cliflag"
	"marchgen/internal/fabric"
	"marchgen/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers      = flag.Int("workers", 0, "generation worker pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "job queue depth (a full queue answers 503)")
		cacheSize    = flag.Int("cache", 128, "result cache entries (content-addressed LRU)")
		retain       = flag.Int("retain", 512, "finished jobs kept pollable before eviction")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "maximum per-job generation deadline")
		syncTimeout  = flag.Duration("sync-timeout", 60*time.Second, "request timeout of the synchronous endpoints")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain window for in-flight jobs")
		dataDir      = flag.String("data", "", "campaign store root (default: marchd-campaigns under the OS temp dir)")
		cacheDir     = flag.String("cache-dir", "", "persistent result-cache directory for warm restarts (default: <data>/resultcache when -data is set; empty -data disables persistence)")
		admitTarget  = flag.Duration("admit-target", 200*time.Millisecond, "admission control: CoDel queue-wait target (sustained waits above it shed load with 429)")
		admitIvl     = flag.Duration("admit-interval", time.Second, "admission control: CoDel observation window")
		campaigns    = flag.Int("campaigns", 2, "maximum concurrently running campaigns")
		chaos503     = flag.Int("chaos-503", 0, "TESTING: answer the first N /v1/ requests with 503 + Retry-After: 0 (exercises client retry paths)")
		coordinator  = flag.Bool("coordinator", false, "serve the distributed campaign fabric (/v1/fabric/*) from this instance")
		joinURL      = flag.String("join", "", "coordinator URL to join as a fabric worker (e.g. http://host:8080)")
		fabricLease  = flag.Int("fabric-lease", 4, "coordinator: shards per fabric lease grant")
		fabricTTL    = flag.Duration("fabric-ttl", 10*time.Second, "coordinator: fabric lease heartbeat deadline")
		lanes        = flag.String("lanes", "on", cliflag.LanesUsage)
		quiet        = flag.Bool("quiet", false, "disable the per-request log")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "marchd")
		return
	}
	lanesOff, err := cliflag.ParseLanes(*lanes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchd:", err)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "marchd: ", log.LstdFlags|log.Lmicroseconds)
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}

	// Cache persistence is opt-in: an explicit -cache-dir wins; otherwise a
	// durable -data root implies <data>/resultcache (a node with durable
	// campaign storage should also warm-start its working set).
	persistDir := *cacheDir
	if persistDir == "" && *dataDir != "" {
		persistDir = *dataDir + "/resultcache"
	}

	srv := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         *cacheSize,
		RetainJobs:        *retain,
		JobTimeout:        *jobTimeout,
		SyncTimeout:       *syncTimeout,
		AdmitTarget:       *admitTarget,
		AdmitInterval:     *admitIvl,
		CacheDir:          persistDir,
		DataDir:           *dataDir,
		MaxCampaigns:      *campaigns,
		DisableLanes:      lanesOff,
		Coordinator:       *coordinator,
		FabricLeaseShards: *fabricLease,
		FabricLeaseTTL:    *fabricTTL,
		Logger:            reqLogger,
	})

	handler := srv.Handler()
	if *chaos503 > 0 {
		logger.Printf("chaos: first %d /v1/ requests will answer 503", *chaos503)
		handler = chaosHandler(handler, int64(*chaos503), logger)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	// The resolved address is announced before serving so wrappers (the
	// smoke test, orchestrators) can bind to port 0 and scrape the port.
	logger.Printf("listening on %s", ln.Addr())

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Fabric worker mode: pull shard leases from the coordinator until
	// shutdown. A permanent rejection (version skew, bad URL) is fatal —
	// an instance asked to work that cannot is misconfigured, and failing
	// loud beats idling silently.
	workerErr := make(chan error, 1)
	if *joinURL != "" {
		w := &fabric.Worker{
			Coordinator: *joinURL,
			Name:        ln.Addr().String(),
			Logf:        logger.Printf,
		}
		logger.Printf("joining fabric coordinator %s", *joinURL)
		go func() { workerErr <- w.Run(ctx) }()
	}

	code := 0
	select {
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	case err := <-workerErr:
		if err != nil && !errors.Is(err, context.Canceled) {
			logger.Printf("fabric worker: %v", err)
			code = 1
		}
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	logger.Printf("shutdown signal received; draining (window %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()

	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
		code = 1
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Printf("job drain: %v", err)
		code = 1
	}
	if code == 0 {
		logger.Printf("drained cleanly")
	}
	fmt.Fprintln(os.Stderr, "marchd: exit", code)
	os.Exit(code)
}

// chaosHandler is the -chaos-503 testing aid: the first n requests to the
// API surface (paths under /v1/) are answered 503 with Retry-After: 0,
// everything after — and /healthz, /metrics at all times — passes through.
// It exercises exactly the backpressure answer a full job queue produces,
// so retrying clients (marchctl, scripts) can be proven against a live
// server without loading it.
func chaosHandler(next http.Handler, n int64, logger *log.Logger) http.Handler {
	var remaining atomic.Int64
	remaining.Store(n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") && remaining.Add(-1) >= 0 {
			logger.Printf("chaos: injected 503 on %s %s", r.Method, r.URL.Path)
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"chaos: injected 503"}`)
			return
		}
		next.ServeHTTP(w, r)
	})
}
