// Command marchd serves the march generator and fault simulator as a
// long-lived HTTP JSON service: an async job engine with a bounded worker
// pool for generation, a content-addressed LRU result cache, structured
// request logging, /healthz and /metrics. See DESIGN.md §8 and the README
// quick-start for the API.
//
// Campaigns: with -data pointing at a durable directory, POST /v1/campaigns
// runs batch sweeps through the campaign engine (internal/campaign); an
// interrupted campaign resumes from its checkpoint on re-POST, across
// restarts of the daemon.
//
// Usage:
//
//	marchd -addr :8080
//	marchd -addr 127.0.0.1:0 -workers 4 -cache 256
//	marchd -addr :8080 -data /var/lib/marchd/campaigns
//
// Shutdown: SIGINT/SIGTERM stops accepting connections, drains in-flight
// jobs up to -drain-timeout, and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"marchgen/internal/buildinfo"
	"marchgen/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers      = flag.Int("workers", 0, "generation worker pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "job queue depth (a full queue answers 503)")
		cacheSize    = flag.Int("cache", 128, "result cache entries (content-addressed LRU)")
		retain       = flag.Int("retain", 512, "finished jobs kept pollable before eviction")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "maximum per-job generation deadline")
		syncTimeout  = flag.Duration("sync-timeout", 60*time.Second, "request timeout of the synchronous endpoints")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain window for in-flight jobs")
		dataDir      = flag.String("data", "", "campaign store root (default: marchd-campaigns under the OS temp dir)")
		campaigns    = flag.Int("campaigns", 2, "maximum concurrently running campaigns")
		quiet        = flag.Bool("quiet", false, "disable the per-request log")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "marchd")
		return
	}

	logger := log.New(os.Stderr, "marchd: ", log.LstdFlags|log.Lmicroseconds)
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}

	srv := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheSize:    *cacheSize,
		RetainJobs:   *retain,
		JobTimeout:   *jobTimeout,
		SyncTimeout:  *syncTimeout,
		DataDir:      *dataDir,
		MaxCampaigns: *campaigns,
		Logger:       reqLogger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	// The resolved address is announced before serving so wrappers (the
	// smoke test, orchestrators) can bind to port 0 and scrape the port.
	logger.Printf("listening on %s", ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	logger.Printf("shutdown signal received; draining (window %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()

	code := 0
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
		code = 1
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Printf("job drain: %v", err)
		code = 1
	}
	if code == 0 {
		logger.Printf("drained cleanly")
	}
	fmt.Fprintln(os.Stderr, "marchd: exit", code)
	os.Exit(code)
}
