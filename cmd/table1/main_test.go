package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// -quick skips the aggressive row but still produces the two cheap
// generated rows and the published-test coverage table.
func TestQuickTable(t *testing.T) {
	if testing.Short() {
		t.Skip("generates against list1; skipped in -short runs")
	}
	code, out, errOut := runCmd(t, "-quick")
	if code != exitOK {
		t.Fatalf("exit %d; stderr: %s", code, errOut)
	}
	for _, want := range []string{"ABL-repro", "ABL1-repro", "March SL", "Published tests"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "RABL-repro") {
		t.Error("-quick still produced the aggressive row")
	}
}

func TestUsageError(t *testing.T) {
	if code, _, _ := runCmd(t, "-badflag"); code != exitUsage {
		t.Fatalf("bad flag: exit %d, want %d", code, exitUsage)
	}
}

func TestVersionFlag(t *testing.T) {
	code, out, _ := runCmd(t, "-version")
	if code != exitOK || out == "" {
		t.Fatalf("exit %d, output %q", code, out)
	}
}
