// Command table1 regenerates the paper's Table 1: it runs the generator
// against Fault Lists #1 and #2, measures generation time and test length,
// and compares against the published baselines (the 43n test of [11], the
// 41n March SL of [10] and the 11n March LF1 of [16]). It also reports the
// simulated coverage of every published test on the reproduction's fault
// lists, which is the data behind EXPERIMENTS.md.
//
// Usage:
//
//	table1            # full reproduction (three generated rows + baselines)
//	table1 -quick     # skip the aggressive (RABL-profile) row
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"marchgen"
	"marchgen/internal/buildinfo"
	"marchgen/internal/faultlist"
	"marchgen/internal/march"
	"marchgen/internal/report"
	"marchgen/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "skip the aggressive (March RABL profile) row")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "table1")
		return
	}

	list1 := faultlist.List1()
	list2 := faultlist.List2()

	type genRow struct {
		name       string
		faults     []marchgen.Fault
		listLabel  string
		aggressive bool
		vsLF1      bool
	}
	rows := []genRow{
		{"ABL-repro", list1, "#1", false, false},
		{"RABL-repro", list1, "#1", true, false},
		{"ABL1-repro", list2, "#2", false, true},
	}
	if *quick {
		rows = append(rows[:1], rows[2:]...)
	}

	var t1 []report.Table1Row
	for _, r := range rows {
		res, err := marchgen.Generate(r.faults, marchgen.Options{Name: "March " + r.name, Aggressive: r.aggressive})
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		row := report.Table1Row{
			Algorithm:  r.name,
			MarchTest:  res.Test.String(),
			FaultList:  r.listLabel,
			CPUSeconds: res.Stats.Duration.Seconds(),
			Length:     res.Test.Length(),
			Imp43:      math.NaN(),
			ImpSL:      math.NaN(),
			ImpLF1:     math.NaN(),
			Coverage:   fmt.Sprintf("%d/%d", res.Report.Detected(), res.Report.Total()),
		}
		if r.vsLF1 {
			row.ImpLF1 = report.Improvement(march.MarchLF1.Length(), res.Test.Length())
		} else {
			row.Imp43 = report.Improvement(march.March43N.Length(), res.Test.Length())
			row.ImpSL = report.Improvement(march.MarchSL.Length(), res.Test.Length())
		}
		t1 = append(t1, row)
		fmt.Printf("%-11s => %s\n", r.name, res.Test)
	}
	fmt.Println()
	if err := report.Table1(t1).Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}

	fmt.Println()
	fmt.Println("Published tests on the reproduction's fault lists (coverage check):")
	cov := &report.Table{Header: []string{"March Test", "O(n)", "List #1", "List #2", "Simple"}}
	cfg := sim.DefaultConfig()
	simple := faultlist.SimpleStatic()
	for _, m := range []marchgen.March{march.MarchSL, march.MarchLF1, march.March43N, march.MarchABL, march.MarchRABL, march.MarchABL1, march.MarchCMinus, march.MarchSS} {
		r1 := sim.Simulate(m, list1, cfg)
		r2 := sim.Simulate(m, list2, cfg)
		rs := sim.Simulate(m, simple, cfg)
		cov.AddRow(m.Name, m.Complexity(),
			fmt.Sprintf("%d/%d", r1.Detected(), r1.Total()),
			fmt.Sprintf("%d/%d", r2.Detected(), r2.Total()),
			fmt.Sprintf("%d/%d", rs.Detected(), rs.Total()))
	}
	if err := cov.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}
