// Command table1 regenerates the paper's Table 1: it runs the generator
// against Fault Lists #1 and #2, measures generation time and test length,
// and compares against the published baselines (the 43n test of [11], the
// 41n March SL of [10] and the 11n March LF1 of [16]). It also reports the
// simulated coverage of every published test on the reproduction's fault
// lists, which is the data behind EXPERIMENTS.md.
//
// Usage:
//
//	table1            # full reproduction (three generated rows + baselines)
//	table1 -quick     # skip the aggressive (RABL-profile) row
//
// Exit codes:
//
//	0  the table rendered
//	1  generation, simulation or output error
//	2  usage error (bad flags)
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"marchgen"
	"marchgen/internal/buildinfo"
	"marchgen/internal/faultlist"
	"marchgen/internal/march"
	"marchgen/internal/report"
	"marchgen/internal/sim"
)

// Exit codes of the table1 command.
const (
	exitOK    = 0 // table rendered
	exitErr   = 1 // generation / simulation / output errors
	exitUsage = 2 // flag errors
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process plumbing factored out so tests can drive
// the command end to end and assert on its exit code and output.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "skip the aggressive (March RABL profile) row")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *version {
		buildinfo.Fprint(stdout, "table1")
		return exitOK
	}

	list1 := faultlist.List1()
	list2 := faultlist.List2()

	type genRow struct {
		name       string
		faults     []marchgen.Fault
		listLabel  string
		aggressive bool
		vsLF1      bool
	}
	rows := []genRow{
		{"ABL-repro", list1, "#1", false, false},
		{"RABL-repro", list1, "#1", true, false},
		{"ABL1-repro", list2, "#2", false, true},
	}
	if *quick {
		rows = append(rows[:1], rows[2:]...)
	}

	var t1 []report.Table1Row
	for _, r := range rows {
		res, err := marchgen.Generate(r.faults, marchgen.Options{Name: "March " + r.name, Aggressive: r.aggressive})
		if err != nil {
			fmt.Fprintln(stderr, "table1:", err)
			return exitErr
		}
		row := report.Table1Row{
			Algorithm:  r.name,
			MarchTest:  res.Test.String(),
			FaultList:  r.listLabel,
			CPUSeconds: res.Stats.Duration.Seconds(),
			Length:     res.Test.Length(),
			Imp43:      math.NaN(),
			ImpSL:      math.NaN(),
			ImpLF1:     math.NaN(),
			Coverage:   fmt.Sprintf("%d/%d", res.Report.Detected(), res.Report.Total()),
		}
		if r.vsLF1 {
			row.ImpLF1 = report.Improvement(march.MarchLF1.Length(), res.Test.Length())
		} else {
			row.Imp43 = report.Improvement(march.March43N.Length(), res.Test.Length())
			row.ImpSL = report.Improvement(march.MarchSL.Length(), res.Test.Length())
		}
		t1 = append(t1, row)
		fmt.Fprintf(stdout, "%-11s => %s\n", r.name, res.Test)
	}
	fmt.Fprintln(stdout)
	if err := report.Table1(t1).Render(stdout); err != nil {
		fmt.Fprintln(stderr, "table1:", err)
		return exitErr
	}

	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "Published tests on the reproduction's fault lists (coverage check):")
	cov := &report.Table{Header: []string{"March Test", "O(n)", "List #1", "List #2", "Simple"}}
	cfg := sim.DefaultConfig()
	simple := faultlist.SimpleStatic()
	for _, m := range []marchgen.March{march.MarchSL, march.MarchLF1, march.March43N, march.MarchABL, march.MarchRABL, march.MarchABL1, march.MarchCMinus, march.MarchSS} {
		r1 := sim.Simulate(m, list1, cfg)
		r2 := sim.Simulate(m, list2, cfg)
		rs := sim.Simulate(m, simple, cfg)
		cov.AddRow(m.Name, m.Complexity(),
			fmt.Sprintf("%d/%d", r1.Detected(), r1.Total()),
			fmt.Sprintf("%d/%d", r2.Detected(), r2.Total()),
			fmt.Sprintf("%d/%d", rs.Detected(), rs.Total()))
	}
	if err := cov.Render(stdout); err != nil {
		fmt.Fprintln(stderr, "table1:", err)
		return exitErr
	}
	return exitOK
}
