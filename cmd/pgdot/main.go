// Command pgdot renders the memory model and pattern graphs of Section 4 in
// Graphviz DOT format, regenerating the paper's figures:
//
//	pgdot -n 2                                        # Figure 2 (G0)
//	pgdot -figure4                                    # Figure 4 (PG_CF)
//	pgdot -n 2 -lf "LF2aa|<0w1;0/1/->|<1w0;1/0/->"    # custom pattern graph
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"marchgen"
)

func main() {
	var (
		n       = flag.Int("n", 2, "memory cells of the model (2^n states)")
		figure4 = flag.Bool("figure4", false, "render Figure 4: the pattern graph of the linked disturb coupling fault of eq. 12")
		lfSpec  = flag.String("lf", "", "linked fault as \"KIND|<FP1>|<FP2>\" with KIND in LF1, LF2aa, LF2av, LF2va, LF3")
		fpSpec  = flag.String("fp", "", "simple fault primitive in <S/F/R> notation")
		out     = flag.String("o", "", "output file (default stdout)")
		title   = flag.String("title", "", "graph title")
	)
	flag.Parse()

	var faults []marchgen.Fault
	name := "G0"
	switch {
	case *figure4:
		f, err := marchgen.LinkFaults(marchgen.LF2aa, "<0w1;0/1/->", "<1w0;1/0/->")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pgdot:", err)
			os.Exit(1)
		}
		faults = append(faults, f)
		name = "PGCF"
	case *lfSpec != "":
		parts := strings.Split(*lfSpec, "|")
		if len(parts) != 3 {
			fmt.Fprintln(os.Stderr, "pgdot: -lf wants \"KIND|<FP1>|<FP2>\"")
			os.Exit(2)
		}
		kinds := map[string]marchgen.FaultKind{
			"LF1": marchgen.LF1, "LF2aa": marchgen.LF2aa, "LF2av": marchgen.LF2av,
			"LF2va": marchgen.LF2va, "LF3": marchgen.LF3,
		}
		kind, ok := kinds[parts[0]]
		if !ok {
			fmt.Fprintf(os.Stderr, "pgdot: unknown kind %q\n", parts[0])
			os.Exit(2)
		}
		f, err := marchgen.LinkFaults(kind, parts[1], parts[2])
		if err != nil {
			fmt.Fprintln(os.Stderr, "pgdot:", err)
			os.Exit(2)
		}
		faults = append(faults, f)
		name = "PG"
	case *fpSpec != "":
		f, err := marchgen.SimpleFault(*fpSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pgdot:", err)
			os.Exit(2)
		}
		faults = append(faults, f)
		name = "PG"
	}
	if *title != "" {
		name = *title
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pgdot:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := marchgen.PatternDOT(w, *n, faults, name); err != nil {
		fmt.Fprintln(os.Stderr, "pgdot:", err)
		os.Exit(1)
	}
}
