// Command pgdot renders the memory model and pattern graphs of Section 4 in
// Graphviz DOT format, regenerating the paper's figures:
//
//	pgdot -n 2                                        # Figure 2 (G0)
//	pgdot -figure4                                    # Figure 4 (PG_CF)
//	pgdot -n 2 -lf "LF2aa|<0w1;0/1/->|<1w0;1/0/->"    # custom pattern graph
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"marchgen"
	"marchgen/internal/buildinfo"
)

// Exit codes of the pgdot command.
const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process plumbing factored out so tests can drive
// the command end to end and assert on its exit code and output.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pgdot", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n       = fs.Int("n", 2, "memory cells of the model (2^n states)")
		figure4 = fs.Bool("figure4", false, "render Figure 4: the pattern graph of the linked disturb coupling fault of eq. 12")
		lfSpec  = fs.String("lf", "", "linked fault as \"KIND|<FP1>|<FP2>\" with KIND in LF1, LF2aa, LF2av, LF2va, LF3")
		fpSpec  = fs.String("fp", "", "simple fault primitive in <S/F/R> notation")
		out     = fs.String("o", "", "output file (default stdout)")
		title   = fs.String("title", "", "graph title")
		version = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *version {
		buildinfo.Fprint(stdout, "pgdot")
		return exitOK
	}

	var faults []marchgen.Fault
	name := "G0"
	switch {
	case *figure4:
		f, err := marchgen.LinkFaults(marchgen.LF2aa, "<0w1;0/1/->", "<1w0;1/0/->")
		if err != nil {
			fmt.Fprintln(stderr, "pgdot:", err)
			return exitError
		}
		faults = append(faults, f)
		name = "PGCF"
	case *lfSpec != "":
		parts := strings.Split(*lfSpec, "|")
		if len(parts) != 3 {
			fmt.Fprintln(stderr, "pgdot: -lf wants \"KIND|<FP1>|<FP2>\"")
			return exitUsage
		}
		kinds := map[string]marchgen.FaultKind{
			"LF1": marchgen.LF1, "LF2aa": marchgen.LF2aa, "LF2av": marchgen.LF2av,
			"LF2va": marchgen.LF2va, "LF3": marchgen.LF3,
		}
		kind, ok := kinds[parts[0]]
		if !ok {
			fmt.Fprintf(stderr, "pgdot: unknown kind %q\n", parts[0])
			return exitUsage
		}
		f, err := marchgen.LinkFaults(kind, parts[1], parts[2])
		if err != nil {
			fmt.Fprintln(stderr, "pgdot:", err)
			return exitUsage
		}
		faults = append(faults, f)
		name = "PG"
	case *fpSpec != "":
		f, err := marchgen.SimpleFault(*fpSpec)
		if err != nil {
			fmt.Fprintln(stderr, "pgdot:", err)
			return exitUsage
		}
		faults = append(faults, f)
		name = "PG"
	}
	if *title != "" {
		name = *title
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "pgdot:", err)
			return exitError
		}
		defer f.Close()
		w = f
	}
	if err := marchgen.PatternDOT(w, *n, faults, name); err != nil {
		fmt.Fprintln(stderr, "pgdot:", err)
		return exitError
	}
	return exitOK
}
