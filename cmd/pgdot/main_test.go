package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestVersion(t *testing.T) {
	code, out, _ := runCmd("-version")
	if code != exitOK || !strings.HasPrefix(out, "pgdot ") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestModelGraphDefault(t *testing.T) {
	code, out, _ := runCmd("-n", "2")
	if code != exitOK {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "G0") {
		t.Fatalf("not a DOT model graph:\n%s", out)
	}
}

func TestFigure4(t *testing.T) {
	code, out, _ := runCmd("-figure4")
	if code != exitOK {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "PGCF") {
		t.Fatalf("figure 4 graph missing PGCF title:\n%s", out)
	}
}

func TestCustomLinkedFault(t *testing.T) {
	code, out, _ := runCmd("-n", "2", "-lf", "LF2aa|<0w1;0/1/->|<1w0;1/0/->", "-title", "Custom")
	if code != exitOK || !strings.Contains(out, "Custom") {
		t.Fatalf("code=%d out:\n%s", code, out)
	}
}

func TestBadSpecsAreUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-lf", "no-pipes-here"},
		{"-lf", "NOPE|<0w1;0/1/->|<1w0;1/0/->"},
		{"-lf", "LF2aa|garbage|garbage"},
		{"-fp", "garbage"},
	}
	for _, args := range cases {
		if code, _, _ := runCmd(args...); code != exitUsage {
			t.Errorf("args %v: exit = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.dot")
	code, out, stderr := runCmd("-n", "2", "-o", path)
	if code != exitOK {
		t.Fatalf("exit = %d, stderr=%q", code, stderr)
	}
	if out != "" {
		t.Fatalf("stdout not empty with -o: %q", out)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "digraph") {
		t.Fatalf("file content:\n%s", b)
	}
}
